//! Memory-budgeted mini-batch stores with real disk spill.
//!
//! Reproduces the system regime behind the paper's end-to-end results
//! (Figure 1A/D, §5.3): encoded mini-batches live in memory until a
//! configurable budget is exhausted; the remainder spills to disk and is
//! re-read (real file IO + deserialization) on every visit. Whether a
//! format's batches fit in the budget is exactly what separates TOC from
//! the baselines on the large-scale runs.
//!
//! Two providers implement the regime:
//!
//! * [`MiniBatchStore`] — single spill file. The read path is positional
//!   ([`crate::io::SpillFile`]): concurrent visitors never serialize on a
//!   shared file cursor.
//! * [`ShardedSpillStore`] — stripes spilled batches across N shard files
//!   ([`StoreConfig::with_shards`]), reads them lock-free, and optionally
//!   runs a background prefetch pipeline ([`StoreConfig::with_prefetch`])
//!   that keeps upcoming batches decoded while the trainer computes on
//!   the current one. With [`StoreConfig::with_io`] the pipeline runs on
//!   an async [`SpillIo`] engine — submissions and completions split, so
//!   K reads stay in flight per shard while decode workers parse
//!   completed buffers; without it each prefetch worker reads
//!   synchronously (read latency serializes with decode per worker).

use std::collections::{HashMap, HashSet, VecDeque};
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use toc_formats::{AnyBatch, ExecScratch, MatrixBatch, Scheme};
use toc_linalg::DenseMatrix;
use toc_ml::mgd::BatchProvider;

use crate::io::{
    lock, rlock, wait, wlock, IoShards, PoolIo, RingIo, SpillDevice, SpillRequest, Ticket,
    MAX_IO_THREADS,
};
pub use crate::io::{
    DeviceProfile, IoEngineKind, IoSnapshot, IoStats, Pinning, SchedulerConfig, SpillIo,
};

/// How spilled batches are laid out across the shard files.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardPlacement {
    /// Round-robin striping: batch `i` lands on shard `i % N`. Maximizes
    /// per-visit device parallelism; consecutive visit-order batches are
    /// `N` apart in each shard file.
    #[default]
    Stripe,
    /// Compression-aware packing: consecutive spilled batches fill one
    /// shard until a byte-sized run target, then move to the next shard
    /// (runs round-robin over shards). Small, highly-compressed batches
    /// cluster adjacently in one file, so a ring-engine lookahead burst
    /// over them coalesces into a handful of large reads — one
    /// submission fetches several batches.
    Pack,
    /// Bandwidth-profiled adaptive placement: batches start in the `Pack`
    /// layout, every physical read charges its observed throughput into
    /// the per-shard EWMA ([`crate::io::BandwidthProfile`]), and at each
    /// epoch boundary ([`BatchProvider::end_epoch`], or
    /// [`ShardedSpillStore::rebalance`] directly) the planner re-packs
    /// hot (frequently re-visited) batches onto the shards measured
    /// fastest, migrating by append-and-repoint so in-flight reads of the
    /// old location stay valid. A slow or degrading device sheds its
    /// batches instead of serializing every epoch.
    Adaptive,
}

impl ShardPlacement {
    pub fn name(self) -> &'static str {
        match self {
            ShardPlacement::Stripe => "stripe",
            ShardPlacement::Pack => "pack",
            ShardPlacement::Adaptive => "adaptive",
        }
    }
}

impl std::fmt::Display for ShardPlacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ShardPlacement {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "stripe" => Ok(ShardPlacement::Stripe),
            "pack" => Ok(ShardPlacement::Pack),
            "adaptive" => Ok(ShardPlacement::Adaptive),
            other => Err(format!(
                "unknown placement {other:?} (stripe|pack|adaptive)"
            )),
        }
    }
}

/// Store configuration.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Encoding scheme for all batches.
    pub scheme: Scheme,
    /// Rows per mini-batch (the paper uses 250 for the end-to-end runs).
    pub batch_rows: usize,
    /// Bytes of encoded batches kept in memory; anything beyond spills.
    pub memory_budget: usize,
    /// Spill directory; defaults to a fresh directory under the OS temp dir.
    pub spill_dir: Option<PathBuf>,
    /// Simulated disk read bandwidth in MB/s. The paper's end-to-end runs
    /// read spilled batches from cloud block storage; on a dev box the OS
    /// page cache makes re-reads nearly free, which would hide the IO wall
    /// the experiments measure. Each spill file (shard) models an
    /// independent device: a read of `len` bytes reserves a
    /// `len / mbps` interval on that device's timeline and sleeps until
    /// the reservation completes, so concurrent readers of one shard
    /// share its bandwidth while readers of different shards proceed in
    /// parallel. Under an async engine the engine's IO threads absorb the
    /// sleep, overlapping it with decode. `None` performs raw IO only.
    pub disk_mbps: Option<f64>,
    /// Number of shard files for [`ShardedSpillStore`]; `0` means one
    /// shard per available hardware thread.
    pub shards: usize,
    /// Prefetch pipeline depth for [`ShardedSpillStore`]: how many
    /// upcoming spilled batches the pipeline keeps decoded (or in
    /// flight) ahead of the visitors. `0` disables prefetch.
    pub prefetch: usize,
    /// Spill-IO engine for the prefetch pipeline (see [`IoEngineKind`]).
    pub io: IoEngineKind,
    /// Spilled-batch layout across shard files.
    pub placement: ShardPlacement,
    /// IO-thread/decode-worker scheduling and shard pinning for the
    /// prefetch pipeline (see [`SchedulerConfig`]).
    pub scheduler: SchedulerConfig,
    /// Per-shard simulated device profiles (cycled over the shards when
    /// shorter). Overrides the uniform `disk_mbps` per device — this is
    /// how heterogeneous storage tiers enter the model. Empty = uniform.
    pub shard_profiles: Vec<DeviceProfile>,
    /// Fault-injection plan for the prefetch pipeline: when set, the
    /// pipeline runs on a [`crate::testing::FaultyIo`] engine that
    /// injects latency, chunked short reads, `EINTR`-style retries and
    /// out-of-order completions (test support; overrides `io`, and its
    /// `device_profiles` override `shard_profiles`).
    pub fault: Option<crate::testing::FaultPlan>,
    /// Per-scheme encoding knobs (CLA planner choice and sample size).
    pub encode: toc_formats::EncodeOptions,
    /// Bounded sealed-chunk budget for streaming ingestion: when > 0,
    /// [`ShardedSpillStore::append_sealed`] blocks while more than this
    /// many appended segments are sealed but not yet consumed by any
    /// visitor, accumulating the stall in
    /// [`IoStats::ingest_stall_ns`]. `0` (default) never blocks — the
    /// ext-entry table grows as fast as the producer can encode.
    pub max_pending: usize,
}

impl StoreConfig {
    pub fn new(scheme: Scheme, batch_rows: usize, memory_budget: usize) -> Self {
        Self {
            scheme,
            batch_rows,
            memory_budget,
            spill_dir: None,
            disk_mbps: None,
            shards: 0,
            prefetch: 0,
            io: IoEngineKind::Sync,
            placement: ShardPlacement::Stripe,
            scheduler: SchedulerConfig::default(),
            shard_profiles: Vec::new(),
            fault: None,
            encode: toc_formats::EncodeOptions::default(),
            max_pending: 0,
        }
    }

    /// Builder-style bounded sealed-chunk budget for streaming
    /// ingestion (`0` = unbounded, never block the producer).
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending;
        self
    }

    /// Builder-style encoding-options override.
    pub fn with_encode_options(mut self, encode: toc_formats::EncodeOptions) -> Self {
        self.encode = encode;
        self
    }

    /// Builder-style bandwidth override. `mbps` must be finite and
    /// positive: zero would model an infinitely slow disk (the first
    /// spilled read would sleep forever) and negative rates are
    /// meaningless, so both are rejected eagerly here rather than hanging
    /// a training run later.
    pub fn with_disk_mbps(mut self, mbps: f64) -> Self {
        assert!(
            mbps.is_finite() && mbps > 0.0,
            "disk_mbps must be finite and > 0, got {mbps}"
        );
        self.disk_mbps = Some(mbps);
        self
    }

    /// Builder-style shard-count override (`0` = available parallelism).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Builder-style prefetch-depth override (`0` = no prefetch).
    pub fn with_prefetch(mut self, depth: usize) -> Self {
        self.prefetch = depth;
        self
    }

    /// Builder-style IO-engine override.
    pub fn with_io(mut self, io: IoEngineKind) -> Self {
        self.io = io;
        self
    }

    /// Builder-style shard-placement override.
    pub fn with_placement(mut self, placement: ShardPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Builder-style scheduler override (IO threads, decode workers,
    /// shard pinning).
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Builder-style per-shard device-profile override (cycled over the
    /// shards when shorter than the shard count).
    pub fn with_shard_profiles(mut self, profiles: Vec<DeviceProfile>) -> Self {
        self.shard_profiles = profiles;
        self
    }

    /// Convenience: stable per-shard bandwidths in MB/s (the asymmetric
    /// storage-tier model without degradation).
    pub fn with_shard_mbps(mut self, mbps: Vec<f64>) -> Self {
        self.shard_profiles = mbps.into_iter().map(DeviceProfile::stable).collect();
        self
    }

    /// Builder-style fault-plan override (test support).
    pub fn with_fault_plan(mut self, plan: crate::testing::FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Builder-style spill-directory override.
    pub fn with_spill_dir(mut self, dir: PathBuf) -> Self {
        self.spill_dir = Some(dir);
        self
    }

    fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }
}

static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread staging for synchronous spilled reads. Prefetch workers
    /// own an [`ExecScratch`] slot; every other reader (plain visits,
    /// prefetch misses) reuses this buffer, so the hot read path performs
    /// no per-read heap allocation on any thread.
    static SYNC_SPILL_BUF: std::cell::RefCell<Vec<u8>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Pick the spill directory: the configured one, or a fresh per-store
/// directory under the OS temp dir (returned as owned for cleanup).
fn resolve_spill_dir(config: &StoreConfig) -> (PathBuf, Option<PathBuf>) {
    match &config.spill_dir {
        Some(d) => (d.clone(), None),
        None => {
            let d = std::env::temp_dir().join(format!(
                "toc-store-{}-{}",
                std::process::id(),
                NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed),
            ));
            (d.clone(), Some(d))
        }
    }
}

/// First pass shared by both stores: encode every batch and decide memory
/// vs. disk, preserving the original batch order (shuffle-once semantics).
enum Pending {
    Mem(AnyBatch),
    Disk(Vec<u8>),
}

#[allow(clippy::type_complexity)]
fn encode_batches(
    x: &DenseMatrix,
    labels: &[f64],
    config: &StoreConfig,
) -> (Vec<(Pending, Vec<f64>)>, usize, bool) {
    assert_eq!(x.rows(), labels.len());
    let mut pending: Vec<(Pending, Vec<f64>)> = Vec::new();
    let mut memory_bytes = 0usize;
    let mut any_spilled = false;
    let mut start = 0usize;
    while start < x.rows() {
        let end = (start + config.batch_rows).min(x.rows());
        let dense = x.slice_rows(start, end);
        let batch = config.scheme.encode_with(&dense, &config.encode);
        let y = labels[start..end].to_vec();
        let size = batch.size_bytes();
        if memory_bytes + size <= config.memory_budget {
            memory_bytes += size;
            pending.push((Pending::Mem(batch), y));
        } else {
            any_spilled = true;
            pending.push((Pending::Disk(batch.to_bytes()), y));
        }
        start = end;
    }
    (pending, memory_bytes, any_spilled)
}

/// Read one spilled batch through the shared device context and parse it.
/// Panics on IO failure or corrupt bytes — the synchronous visit path
/// surfaces spill corruption loudly instead of training on garbage.
fn read_parse(io: &IoShards, shard: usize, offset: u64, len: usize, buf: &mut Vec<u8>) -> AnyBatch {
    io.read_range(shard, offset, len, buf)
        .expect("read spill file");
    Scheme::from_bytes(buf).expect("spill data corrupted")
}

// ---------------------------------------------------------------------------
// MiniBatchStore: the single-file store.

enum Location {
    Memory(AnyBatch),
    Disk { offset: u64, len: usize },
}

/// The single-file out-of-core mini-batch store. Implements
/// [`toc_ml::mgd::BatchProvider`], so it plugs directly into the trainer.
/// The read path is positional: concurrent visitors never contend on a
/// file cursor or lock (unix; see [`crate::io::SpillFile`]).
pub struct MiniBatchStore {
    scheme: Scheme,
    features: usize,
    entries: Vec<(Location, Vec<f64>)>,
    io: Arc<IoShards>,
    spill_path: Option<PathBuf>,
    owns_dir: Option<PathBuf>,
    memory_bytes: usize,
    spilled_bytes: usize,
}

impl MiniBatchStore {
    /// Encode `x` into mini-batches under `config`, spilling past the
    /// memory budget. `labels` follow the `toc-ml` convention.
    pub fn build(x: &DenseMatrix, labels: &[f64], config: &StoreConfig) -> std::io::Result<Self> {
        let (pending, memory_bytes, any_spilled) = encode_batches(x, labels, config);

        // Second pass: lay spilled batches out in the spill file, keeping
        // entry order aligned with batch order.
        let mut entries = Vec::with_capacity(pending.len());
        let (devices, spill_path, owns_dir, spilled_bytes) = if !any_spilled {
            for (p, y) in pending {
                match p {
                    Pending::Mem(b) => entries.push((Location::Memory(b), y)),
                    Pending::Disk(_) => unreachable!(),
                }
            }
            (Vec::new(), None, None, 0)
        } else {
            let (dir, owns) = resolve_spill_dir(config);
            fs::create_dir_all(&dir)?;
            // Per-store id in the name: two stores sharing an explicit
            // spill_dir (and scheme) must not truncate or unlink each
            // other's live spill file.
            let path = dir.join(format!(
                "spill-{}-{}.bin",
                config.scheme.tag(),
                NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed),
            ));
            let mut f = OpenOptions::new()
                .create(true)
                .write(true)
                .read(true)
                .truncate(true)
                .open(&path)?;
            let mut offset = 0u64;
            let mut total = 0usize;
            for (p, y) in pending {
                match p {
                    Pending::Mem(b) => entries.push((Location::Memory(b), y)),
                    Pending::Disk(bytes) => {
                        f.write_all(&bytes)?;
                        entries.push((
                            Location::Disk {
                                offset,
                                len: bytes.len(),
                            },
                            y,
                        ));
                        offset += bytes.len() as u64;
                        total += bytes.len();
                    }
                }
            }
            f.sync_all()?;
            (vec![SpillDevice::new(f)], Some(path), owns, total)
        };

        Ok(Self {
            scheme: config.scheme,
            features: x.cols(),
            entries,
            io: Arc::new(IoShards::new(devices, config.disk_mbps)),
            spill_path,
            owns_dir,
            memory_bytes,
            spilled_bytes,
        })
    }

    /// Number of batches kept in memory.
    pub fn in_memory_batches(&self) -> usize {
        self.entries
            .iter()
            .filter(|(l, _)| matches!(l, Location::Memory(_)))
            .count()
    }

    /// Number of batches on disk.
    pub fn spilled_batches(&self) -> usize {
        self.entries.len() - self.in_memory_batches()
    }

    /// Bytes of encoded batches resident in memory.
    pub fn memory_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// Bytes of encoded batches on disk.
    pub fn spilled_bytes(&self) -> usize {
        self.spilled_bytes
    }

    /// Total encoded footprint.
    pub fn total_bytes(&self) -> usize {
        self.memory_bytes + self.spilled_bytes
    }

    /// The scheme this store encodes with.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Cumulative IO statistics.
    pub fn stats(&self) -> &IoStats {
        &self.io.stats
    }

    fn read_disk(&self, offset: u64, len: usize) -> AnyBatch {
        SYNC_SPILL_BUF.with(|cell| read_parse(&self.io, 0, offset, len, &mut cell.borrow_mut()))
    }
}

impl BatchProvider for MiniBatchStore {
    fn num_batches(&self) -> usize {
        self.entries.len()
    }

    fn num_features(&self) -> usize {
        self.features
    }

    fn visit(&self, idx: usize, f: &mut dyn FnMut(&AnyBatch, &[f64])) {
        let (loc, labels) = &self.entries[idx];
        match loc {
            Location::Memory(b) => f(b, labels),
            Location::Disk { offset, len } => {
                let b = self.read_disk(*offset, *len);
                f(&b, labels);
            }
        }
    }
}

impl Drop for MiniBatchStore {
    fn drop(&mut self) {
        // Best-effort cleanup of the spill artifacts we created. Close
        // the spill file first: fields drop only after this body, and the
        // portable (non-unix) path cannot unlink a file that is still
        // open.
        self.io = Arc::new(IoShards::new(Vec::new(), None));
        if let Some(p) = &self.spill_path {
            let _ = fs::remove_file(p);
        }
        if let Some(d) = &self.owns_dir {
            let _ = fs::remove_dir(d);
        }
    }
}

// ---------------------------------------------------------------------------
// ShardedSpillStore: striped shard files + background prefetch pipeline.

/// Where a spilled batch lives.
#[derive(Clone, Copy, Debug)]
struct DiskLoc {
    shard: usize,
    offset: u64,
    len: usize,
}

enum Slot {
    Memory(AnyBatch),
    /// Spilled: the index into `Inner::locs`/`Inner::visits` (spill ids
    /// are assigned in entry order, so `Inner::spilled_order[id]` is this
    /// entry's index). The location itself lives behind a lock because
    /// adaptive placement repoints it between epochs.
    Disk(usize),
}

/// Per-shard bookkeeping that is not part of the read path.
struct ShardMeta {
    path: PathBuf,
}

/// Placement counters for the adaptive planner (exposed through
/// [`PlacementReport`]).
#[derive(Default)]
struct PlacementStats {
    /// Rebalance passes that had enough profiler signal to plan.
    rebalances: AtomicU64,
    /// Batches migrated to a different shard.
    migrated_batches: AtomicU64,
    /// Bytes those migrations copied.
    migrated_bytes: AtomicU64,
}

/// A segment appended to a *live* store by the streaming-ingest path
/// ([`ShardedSpillStore::append_sealed`]). Appended entries live outside
/// the immutable build-time tables (`Inner::entries` / `Inner::visits` /
/// `Inner::spilled_order`), which are read lock-free by the prefetch
/// pipeline and must never reallocate under a reader. Each ext entry is
/// `Arc`-shared so a visitor clones it out of a brief table read lock and
/// decodes without holding any lock; the location sits behind its own
/// lock because the adaptive migrator repoints appended segments too.
struct ExtEntry {
    loc: RwLock<DiskLoc>,
    labels: Vec<f64>,
    /// Hotness signal for the adaptive planner, parallel to
    /// `Inner::visits` for build-time entries.
    visits: AtomicU64,
}

/// State shared between the store handle and the prefetch workers.
struct Inner {
    scheme: Scheme,
    features: usize,
    entries: Vec<(Slot, Vec<f64>)>,
    /// Indices of the disk-resident entries, ascending — the cyclic orbit
    /// the prefetch lookahead walks (a store can hold arbitrarily many
    /// in-memory batches between spilled ones; scanning `entries` for the
    /// next spilled index under the prefetch lock would be O(n)).
    spilled_order: Vec<usize>,
    /// Current location of each spilled batch, by spill id. Written only
    /// by [`ShardedSpillStore::rebalance`]; every reader takes a brief
    /// read lock (cheap next to the file IO it precedes).
    locs: RwLock<Vec<DiskLoc>>,
    /// Per-spill-id visit counts — the hotness signal the adaptive
    /// planner ranks batches by.
    visits: Vec<AtomicU64>,
    /// Segments appended after build by streaming ingest, in append
    /// order. Readers may only index below the `sealed` watermark.
    ext: RwLock<Vec<Arc<ExtEntry>>>,
    /// Visibility watermark for `ext`: bumped with `Release` only after a
    /// segment's bytes are fully in its shard file *and* its entry is
    /// pushed, so any index below the watermark (loaded with `Acquire`)
    /// resolves to completely-written, decodable bytes.
    sealed: AtomicUsize,
    shard_meta: Vec<ShardMeta>,
    /// Streaming-append state (cursors, sequence, byte total). Doubles as
    /// the placement mutation lock: rebalance and streaming-ingest
    /// appends hold it end to end, so plans and cursor bumps never
    /// interleave — and because the sequence number lives *inside* the
    /// mutex, two racing appenders serialize instead of interleaving
    /// sequence numbers (the old unsynchronized `sealed` pre-read).
    append: Mutex<AppendState>,
    /// Exclusive [`crate::StoreIngest`] registration: one structured
    /// ingest driver at a time (raw `append_sealed` calls stay legal and
    /// serialize on the append mutex).
    appender_active: std::sync::atomic::AtomicBool,
    /// Bounded sealed-chunk budget (`0` = unbounded).
    max_pending: usize,
    /// Consumed watermark for backpressure: the highest appended index
    /// any visitor has finished reading, plus one. `append_sealed` blocks
    /// while `sealed - consumed >= max_pending`.
    consumed: Mutex<usize>,
    /// Wakes a blocked producer when a visitor advances `consumed`.
    consumed_cv: Condvar,
    /// High-water mark of `sealed - consumed` observed at append time.
    peak_pending: AtomicUsize,
    placement_stats: PlacementStats,
    io: Arc<IoShards>,
}

/// Exclusive structured-appender registration
/// ([`ShardedSpillStore::try_acquire_appender`]): held by a
/// [`crate::StoreIngest`] for its lifetime, released on drop.
pub struct AppenderToken<'a> {
    inner: &'a Inner,
}

impl Drop for AppenderToken<'_> {
    fn drop(&mut self) {
        self.inner
            .appender_active
            .store(false, std::sync::atomic::Ordering::Release);
    }
}

/// One sealed segment recorded in a [`StoreCheckpoint`]: its current
/// shard extent and its labels.
#[derive(Clone, Debug, PartialEq)]
struct CheckpointEntry {
    shard: u32,
    offset: u64,
    len: u64,
    labels: Vec<f64>,
}

/// Serializable snapshot of a streaming store's append state
/// ([`ShardedSpillStore::streaming_checkpoint`] /
/// [`ShardedSpillStore::open_streaming_resume`]): shard file paths,
/// per-shard cursors, and every sealed segment's extent + labels.
/// Integrity (checksums) is the enclosing sidecar's job — see
/// `toc_data::ingest`.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreCheckpoint {
    shard_paths: Vec<PathBuf>,
    cursors: Vec<u64>,
    entries: Vec<CheckpointEntry>,
}

const STORE_CKPT_V1: u8 = 1;

impl StoreCheckpoint {
    /// Segments recorded in this checkpoint.
    pub fn num_segments(&self) -> usize {
        self.entries.len()
    }

    /// Total encoded bytes across the recorded segments.
    pub fn encoded_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.len).sum()
    }

    /// The shard files this checkpoint expects to find on disk.
    pub fn shard_paths(&self) -> &[PathBuf] {
        &self.shard_paths
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(STORE_CKPT_V1);
        out.extend_from_slice(&(self.shard_paths.len() as u32).to_le_bytes());
        for (path, cursor) in self.shard_paths.iter().zip(&self.cursors) {
            let p = path.to_string_lossy();
            out.extend_from_slice(&(p.len() as u32).to_le_bytes());
            out.extend_from_slice(p.as_bytes());
            out.extend_from_slice(&cursor.to_le_bytes());
        }
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.shard.to_le_bytes());
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.len.to_le_bytes());
            out.extend_from_slice(&(e.labels.len() as u64).to_le_bytes());
            for l in &e.labels {
                out.extend_from_slice(&l.to_le_bytes());
            }
        }
        out
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
            if n > bytes.len() - *pos {
                return Err("store checkpoint truncated".into());
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let u32_at = |pos: &mut usize| -> Result<u32, String> {
            Ok(u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()))
        };
        let u64_at = |pos: &mut usize| -> Result<u64, String> {
            Ok(u64::from_le_bytes(take(pos, 8)?.try_into().unwrap()))
        };
        if *take(&mut pos, 1)?.first().unwrap() != STORE_CKPT_V1 {
            return Err("unknown store-checkpoint version".into());
        }
        let n_shards = u32_at(&mut pos)? as usize;
        if n_shards == 0 || n_shards > 4096 {
            return Err(format!("implausible shard count {n_shards}"));
        }
        let mut shard_paths = Vec::with_capacity(n_shards);
        let mut cursors = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let plen = u32_at(&mut pos)? as usize;
            let p = std::str::from_utf8(take(&mut pos, plen)?)
                .map_err(|_| "bad shard path encoding".to_string())?;
            shard_paths.push(PathBuf::from(p));
            cursors.push(u64_at(&mut pos)?);
        }
        let n_entries = u64_at(&mut pos)? as usize;
        if n_entries > bytes.len() {
            return Err("store checkpoint claims more entries than it carries".into());
        }
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let shard = u32_at(&mut pos)?;
            let offset = u64_at(&mut pos)?;
            let len = u64_at(&mut pos)?;
            let n_labels = u64_at(&mut pos)? as usize;
            if n_labels > bytes.len() {
                return Err("store checkpoint claims more labels than it carries".into());
            }
            let mut labels = Vec::with_capacity(n_labels);
            for _ in 0..n_labels {
                labels.push(f64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()));
            }
            entries.push(CheckpointEntry {
                shard,
                offset,
                len,
                labels,
            });
        }
        if pos != bytes.len() {
            return Err("trailing bytes after store checkpoint".into());
        }
        Ok(Self {
            shard_paths,
            cursors,
            entries,
        })
    }
}

/// Mutable streaming-append state, all behind one mutex so a stats
/// snapshot can never observe `bytes` ahead of the sealed count.
struct AppendState {
    /// Per-shard append cursors (current file length).
    cursors: Vec<u64>,
    /// Segments fully appended (authoritative; `Inner::sealed` republishes
    /// it with `Release` for the lock-free visibility check).
    seq: usize,
    /// Encoded bytes across those `seq` segments.
    bytes: u64,
}

impl Inner {
    fn disk_loc(&self, idx: usize) -> Option<DiskLoc> {
        match &self.entries[idx].0 {
            Slot::Disk(id) => Some(rlock(&self.locs)[*id]),
            Slot::Memory(_) => None,
        }
    }

    /// Read and parse one spilled batch into the caller's reusable
    /// staging slot.
    fn read_disk(&self, loc: DiskLoc, buf: &mut Vec<u8>) -> AnyBatch {
        read_parse(&self.io, loc.shard, loc.offset, loc.len, buf)
    }

    /// [`Self::read_disk`] staged through the visitor thread's reusable
    /// buffer (plain visits and prefetch misses).
    fn read_disk_sync(&self, loc: DiskLoc) -> AnyBatch {
        SYNC_SPILL_BUF.with(|cell| self.read_disk(loc, &mut cell.borrow_mut()))
    }
}

#[derive(Default)]
struct PrefetchState {
    /// Sync mode: indices scheduled but not yet picked up by a worker.
    queue: VecDeque<usize>,
    /// Indices the pipeline owns right now: being read by a sync worker,
    /// in flight on the async engine, or decoding.
    pending: HashSet<usize>,
    /// Async mode: engine ticket → entry index, for routing completions.
    tickets: HashMap<Ticket, usize>,
    /// Async mode: submitted-but-not-completed requests per shard (the
    /// per-shard K cap).
    in_flight_shard: Vec<usize>,
    /// Async mode: recycled read buffers; submission pops, decode pushes
    /// back, so steady-state prefetching allocates only decoded batches.
    buf_pool: Vec<Vec<u8>>,
    /// Decoded batches awaiting their visitor.
    ready: HashMap<usize, AnyBatch>,
    shutdown: bool,
}

struct PrefetchShared {
    state: Mutex<PrefetchState>,
    /// Wakes sync workers: new work queued, backpressure released, shutdown.
    work: Condvar,
    /// Wakes visitors blocked on an in-flight slot.
    done: Condvar,
}

/// Background decode pipeline. In sync mode worker threads pull scheduled
/// indices, read them from the shards (positional IO, per-shard throttle)
/// into reusable [`ExecScratch`]-backed slots, and park the decoded
/// batches for the visitors. In async mode ([`StoreConfig::with_io`])
/// submission happens at schedule time — the visitor's lookahead submits
/// straight to the [`SpillIo`] engine, keeping up to `depth` reads in
/// flight per shard — and the workers only harvest completions and
/// decode. Backpressure caps owned-but-unconsumed slots at `2 × depth`
/// either way.
struct Prefetcher {
    shared: Arc<PrefetchShared>,
    engine: Option<Arc<dyn SpillIo>>,
    depth: usize,
    workers: Vec<JoinHandle<()>>,
}

const MAX_PREFETCH_WORKERS: usize = 8;

/// Submit the next spilled indices after `after` (cyclically, so the
/// pipeline stays warm across epoch boundaries) straight to the async
/// engine, honoring the global `2 × depth` backpressure window and the
/// per-shard in-flight cap of `depth`.
fn submit_lookahead(
    inner: &Inner,
    engine: &dyn SpillIo,
    st: &mut PrefetchState,
    after: Option<usize>,
    depth: usize,
) {
    let order = &inner.spilled_order;
    if order.is_empty() {
        return;
    }
    let start = match after {
        Some(idx) => order.partition_point(|&i| i <= idx),
        None => 0,
    };
    // Early-exit bookkeeping: once every shard is at its in-flight cap no
    // later candidate can submit either, so the walk must stop instead of
    // scanning the whole spilled order under the state lock.
    let mut open_shards = st.in_flight_shard.iter().filter(|&&n| n < depth).count();
    for k in 0..order.len() {
        if open_shards == 0 || st.pending.len() + st.ready.len() >= 2 * depth {
            break;
        }
        let i = order[(start + k) % order.len()];
        if st.pending.contains(&i) || st.ready.contains_key(&i) {
            continue;
        }
        let loc = inner
            .disk_loc(i)
            .expect("spilled_order holds a memory entry");
        if st.in_flight_shard[loc.shard] >= depth {
            continue;
        }
        let buf = st.buf_pool.pop().unwrap_or_default();
        let ticket = engine.submit(
            SpillRequest {
                shard: loc.shard,
                offset: loc.offset,
                len: loc.len,
            },
            buf,
        );
        st.tickets.insert(ticket, i);
        st.pending.insert(i);
        st.in_flight_shard[loc.shard] += 1;
        if st.in_flight_shard[loc.shard] >= depth {
            open_shards -= 1;
        }
    }
}

impl Prefetcher {
    fn start(
        inner: Arc<Inner>,
        depth: usize,
        engine: Option<Arc<dyn SpillIo>>,
        decode_workers: usize,
    ) -> Self {
        let shared = Arc::new(PrefetchShared {
            state: Mutex::new(PrefetchState {
                in_flight_shard: vec![0; inner.io.devices.len()],
                ..PrefetchState::default()
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        // Seed the pipeline with the first spilled indices so the very
        // first epoch already overlaps IO with compute.
        {
            let mut st = lock(&shared.state);
            match &engine {
                Some(engine) => submit_lookahead(&inner, engine.as_ref(), &mut st, None, depth),
                None => st
                    .queue
                    .extend(inner.spilled_order.iter().take(depth).copied()),
            }
        }
        let threads = decode_workers.clamp(1, MAX_PREFETCH_WORKERS);
        let workers = (0..threads)
            .map(|w| {
                let inner = Arc::clone(&inner);
                let shared = Arc::clone(&shared);
                let engine = engine.clone();
                std::thread::spawn(move || match engine {
                    // Worker `w` drains completion lane `w`: with striped
                    // lanes ([`SchedulerConfig`] pinning) a shard's
                    // batches always decode on the same worker.
                    Some(e) => Self::async_worker_loop(&shared, e.as_ref(), depth, w),
                    None => Self::sync_worker_loop(&inner, &shared, depth),
                })
            })
            .collect();
        Self {
            shared,
            engine,
            depth,
            workers,
        }
    }

    fn sync_worker_loop(inner: &Inner, shared: &PrefetchShared, depth: usize) {
        // The reusable slot: IO staging lives in the worker's scratch and
        // persists across prefetches, so steady-state prefetching
        // allocates only the decoded batch itself.
        let mut scratch = ExecScratch::default();
        loop {
            let idx = {
                let mut st = lock(&shared.state);
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.ready.len() < 2 * depth {
                        if let Some(i) = st.queue.pop_front() {
                            st.pending.insert(i);
                            break i;
                        }
                    }
                    st = wait(&shared.work, st);
                }
            };
            let loc = inner.disk_loc(idx).expect("prefetch of in-memory batch");
            // Contain read/parse panics (truncated shard, corrupt bytes):
            // the index must leave `pending` either way, or a visitor
            // waiting on it would hang forever. On failure the index is
            // simply no longer tracked — the visitor falls through to the
            // synchronous path and surfaces the underlying error itself.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                inner.read_disk(loc, &mut scratch.spill_bytes)
            }));
            let mut st = lock(&shared.state);
            st.pending.remove(&idx);
            if let Ok(batch) = result {
                st.ready.insert(idx, batch);
            }
            drop(st);
            shared.done.notify_all();
        }
    }

    /// Async mode: harvest engine completions and decode them. Reads are
    /// already in flight (submitted by the visitors' lookahead), so this
    /// thread's decode time overlaps the engine's IO time — the
    /// submit/complete split the synchronous loop can't express.
    fn async_worker_loop(shared: &PrefetchShared, engine: &dyn SpillIo, depth: usize, lane: usize) {
        while let Some(c) = engine.complete_on(lane) {
            let idx = {
                let mut st = lock(&shared.state);
                match st.tickets.remove(&c.ticket) {
                    Some(i) => i,
                    // Ticket from a dropped epoch of the pipeline (cannot
                    // happen today — one engine per prefetcher — but a
                    // stray completion must not corrupt state).
                    None => continue,
                }
            };
            // Decode outside the lock; contain parse panics like the sync
            // loop does.
            let batch = match &c.result {
                Ok(()) => std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    Scheme::from_bytes(&c.buf)
                }))
                .ok()
                .and_then(|r| r.ok()),
                Err(_) => None,
            };
            let mut st = lock(&shared.state);
            if let Some(n) = st.in_flight_shard.get_mut(c.shard) {
                *n = n.saturating_sub(1);
            }
            st.pending.remove(&idx);
            if let Some(b) = batch {
                st.ready.insert(idx, b);
            }
            // Recycle the read buffer, bounded so a burst can't hoard
            // memory forever.
            if st.buf_pool.len() < 2 * depth + MAX_IO_THREADS {
                st.buf_pool.push(c.buf);
            }
            drop(st);
            shared.done.notify_all();
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.work.notify_all();
        self.shared.done.notify_all();
        if let Some(e) = &self.engine {
            // Wakes async workers blocked in complete(); queued
            // submissions are dropped.
            e.shutdown();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // The engine itself (and its IO threads) drops with `self.engine`
        // after every worker has exited.
    }
}

/// Sharded, concurrent out-of-core store: spilled batches are laid out
/// across N shard files ([`ShardPlacement`]), the read path is lock-free
/// positional IO, and an optional prefetch pipeline keeps upcoming
/// batches decoded in the background — synchronously per worker, or
/// overlapped through an async [`SpillIo`] engine. Implements
/// [`BatchProvider`].
pub struct ShardedSpillStore {
    inner: Arc<Inner>,
    prefetcher: Option<Prefetcher>,
    owns_dir: Option<PathBuf>,
    memory_bytes: usize,
    spilled_bytes: usize,
    placement: ShardPlacement,
    scheduler: SchedulerConfig,
    /// Resolved scheduling (for [`PlacementReport`] / the CLI stats line).
    io_threads: usize,
    decode_workers: usize,
    /// Fault plan applied to the streaming-ingest *append* path (write
    /// faults); the read-side engine keeps its own clone.
    ingest_fault: Option<crate::testing::FaultPlan>,
}

/// Pack placement: aim for this many contiguous runs per shard, so every
/// shard still sees multiple visit-order runs (device parallelism) while
/// each run keeps consecutive batches file-adjacent (coalescing).
const PACK_RUNS_PER_SHARD: usize = 4;

impl ShardedSpillStore {
    /// Encode `x` into mini-batches under `config`, laying everything
    /// past the memory budget out across `config.shards` shard files.
    pub fn build(x: &DenseMatrix, labels: &[f64], config: &StoreConfig) -> std::io::Result<Self> {
        let (pending, memory_bytes, any_spilled) = encode_batches(x, labels, config);
        Self::from_pending(pending, memory_bytes, any_spilled, x.cols(), config)
    }

    /// Build the store by streaming a v2 `.tocz` container instead of a
    /// materialized dense matrix: segments decode one at a time through
    /// [`crate::io::SeekableContainer`], the last column is split off as
    /// the ±1 label, and rows re-chunk into `config.batch_rows` batches
    /// (with carry-over across segment boundaries), so the resulting
    /// batch boundaries — and therefore training — match
    /// [`ShardedSpillStore::build`] on the decoded matrix exactly. Peak
    /// memory is one decoded segment plus one staged batch, not the
    /// dataset.
    pub fn build_from_container(path: &Path, config: &StoreConfig) -> std::io::Result<Self> {
        let inval = |e: String| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
        let sc = crate::io::SeekableContainer::open(path).map_err(inval)?;
        let cols = sc.cols();
        if cols < 2 {
            return Err(inval(format!(
                "container has {cols} columns; need features plus a label column"
            )));
        }
        let d = cols - 1;
        let mut pending: Vec<(Pending, Vec<f64>)> = Vec::new();
        let mut memory_bytes = 0usize;
        let mut any_spilled = false;
        let mut stage: Vec<f64> = Vec::with_capacity(config.batch_rows * d);
        let mut stage_y: Vec<f64> = Vec::with_capacity(config.batch_rows);
        let flush = |stage: &mut Vec<f64>,
                     stage_y: &mut Vec<f64>,
                     pending: &mut Vec<(Pending, Vec<f64>)>,
                     memory_bytes: &mut usize,
                     any_spilled: &mut bool| {
            if stage_y.is_empty() {
                return;
            }
            let dense = DenseMatrix::from_vec(stage_y.len(), d, std::mem::take(stage));
            let batch = config.scheme.encode_with(&dense, &config.encode);
            let y = std::mem::take(stage_y);
            let size = batch.size_bytes();
            if *memory_bytes + size <= config.memory_budget {
                *memory_bytes += size;
                pending.push((Pending::Mem(batch), y));
            } else {
                *any_spilled = true;
                pending.push((Pending::Disk(batch.to_bytes()), y));
            }
        };
        for seg in 0..sc.num_segments() {
            let dense = sc.decode_segment(seg).map_err(inval)?.decode();
            for r in 0..dense.rows() {
                let row = dense.row(r);
                stage.extend_from_slice(&row[..d]);
                stage_y.push(if row[d] >= 0.0 { 1.0 } else { -1.0 });
                if stage_y.len() == config.batch_rows {
                    flush(
                        &mut stage,
                        &mut stage_y,
                        &mut pending,
                        &mut memory_bytes,
                        &mut any_spilled,
                    );
                }
            }
        }
        flush(
            &mut stage,
            &mut stage_y,
            &mut pending,
            &mut memory_bytes,
            &mut any_spilled,
        );
        Self::from_pending(pending, memory_bytes, any_spilled, d, config)
    }

    /// Second phase shared by [`ShardedSpillStore::build`] and
    /// [`ShardedSpillStore::build_from_container`]: lay spilled batches
    /// out across shard files, resolve placement/scheduling, and start
    /// the prefetch pipeline.
    fn from_pending(
        pending: Vec<(Pending, Vec<f64>)>,
        memory_bytes: usize,
        any_spilled: bool,
        features: usize,
        config: &StoreConfig,
    ) -> std::io::Result<Self> {
        let spill_sizes: Vec<usize> = pending
            .iter()
            .filter_map(|(p, _)| match p {
                Pending::Disk(b) => Some(b.len()),
                Pending::Mem(_) => None,
            })
            .collect();
        let spilled_count = spill_sizes.len();

        let mut entries = Vec::with_capacity(pending.len());
        let mut locs: Vec<DiskLoc> = Vec::with_capacity(spilled_count);
        let (devices, shard_meta, append, owns_dir, spilled_bytes) = if !any_spilled {
            for (p, y) in pending {
                match p {
                    Pending::Mem(b) => entries.push((Slot::Memory(b), y)),
                    Pending::Disk(_) => unreachable!(),
                }
            }
            (Vec::new(), Vec::new(), Vec::new(), None, 0)
        } else {
            let (dir, owns) = resolve_spill_dir(config);
            fs::create_dir_all(&dir)?;
            let n_shards = config.resolved_shards().clamp(1, spilled_count);
            let assignment = place_spilled(&spill_sizes, n_shards, config.placement);
            let store_id = NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed);
            let mut files = Vec::with_capacity(n_shards);
            let mut paths = Vec::with_capacity(n_shards);
            for s in 0..n_shards {
                let path = dir.join(format!(
                    "spill-{}-{}-s{}.bin",
                    config.scheme.tag(),
                    store_id,
                    s
                ));
                files.push(
                    OpenOptions::new()
                        .create(true)
                        .write(true)
                        .read(true)
                        .truncate(true)
                        .open(&path)?,
                );
                paths.push(path);
            }
            let mut offsets = vec![0u64; n_shards];
            let mut spill_idx = 0usize;
            let mut total = 0usize;
            for (p, y) in pending {
                match p {
                    Pending::Mem(b) => entries.push((Slot::Memory(b), y)),
                    Pending::Disk(bytes) => {
                        let s = assignment[spill_idx];
                        files[s].write_all(&bytes)?;
                        entries.push((Slot::Disk(spill_idx), y));
                        locs.push(DiskLoc {
                            shard: s,
                            offset: offsets[s],
                            len: bytes.len(),
                        });
                        spill_idx += 1;
                        offsets[s] += bytes.len() as u64;
                        total += bytes.len();
                    }
                }
            }
            // Per-shard device profiles: the fault plan's (test harness)
            // win over the config's; both cycle when shorter than the
            // shard count.
            let profiles: &[DeviceProfile] = config
                .fault
                .as_ref()
                .map(|f| f.device_profiles.as_slice())
                .filter(|p| !p.is_empty())
                .unwrap_or(&config.shard_profiles);
            let shards: Vec<(SpillDevice, ShardMeta)> = files
                .into_iter()
                .zip(paths)
                .enumerate()
                .map(|(s, (f, path))| {
                    let profile = (!profiles.is_empty()).then(|| profiles[s % profiles.len()]);
                    f.sync_all()
                        .map(|_| (SpillDevice::with_profile(f, profile), ShardMeta { path }))
                })
                .collect::<std::io::Result<_>>()?;
            let (devices, meta) = shards.into_iter().unzip();
            (devices, meta, offsets, owns, total)
        };

        let spilled_order: Vec<usize> = entries
            .iter()
            .enumerate()
            .filter_map(|(i, (s, _))| matches!(s, Slot::Disk(_)).then_some(i))
            .collect();
        let n_shards = devices.len();
        let io = Arc::new(IoShards::new(devices, config.disk_mbps));
        let visits = (0..locs.len()).map(|_| AtomicU64::new(0)).collect();
        let inner = Arc::new(Inner {
            scheme: config.scheme,
            features,
            entries,
            spilled_order,
            locs: RwLock::new(locs),
            visits,
            ext: RwLock::new(Vec::new()),
            sealed: AtomicUsize::new(0),
            shard_meta,
            append: Mutex::new(AppendState {
                cursors: append,
                seq: 0,
                bytes: 0,
            }),
            appender_active: std::sync::atomic::AtomicBool::new(false),
            max_pending: config.max_pending,
            consumed: Mutex::new(0),
            consumed_cv: Condvar::new(),
            peak_pending: AtomicUsize::new(0),
            placement_stats: PlacementStats::default(),
            io: Arc::clone(&io),
        });
        // Resolve the scheduler even when no engine starts, so the report
        // and the CLI stats line always name real numbers — and so an
        // invalid pin map is rejected no matter which engine runs.
        let sched = &config.scheduler;
        let decode_workers = sched.resolved_decode_workers(config.prefetch, MAX_PREFETCH_WORKERS);
        let io_threads = sched.resolved_io_threads(config.io, n_shards.max(1), config.prefetch);
        // A fault plan replaces the configured engine with FaultyIo, whose
        // worker count comes from the plan — report what actually runs.
        let engine_io_threads = match &config.fault {
            Some(plan) => plan.resolved_workers(),
            None => io_threads,
        };
        if n_shards > 0 {
            sched
                .ring_assignment(n_shards, io_threads)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        }
        let prefetcher = if config.prefetch > 0 && spilled_count > 0 {
            let lanes = sched.completion_lanes(decode_workers, n_shards);
            let engine: Option<Arc<dyn SpillIo>> = if let Some(plan) = &config.fault {
                Some(Arc::new(crate::testing::FaultyIo::start(
                    Arc::clone(&io),
                    plan.clone(),
                )))
            } else {
                match config.io {
                    IoEngineKind::Sync => None,
                    IoEngineKind::Pool => {
                        Some(Arc::new(PoolIo::start(Arc::clone(&io), io_threads, lanes)))
                    }
                    IoEngineKind::Ring => {
                        let assign = sched
                            .ring_assignment(n_shards, io_threads)
                            .expect("pin map validated above");
                        Some(Arc::new(RingIo::start(
                            Arc::clone(&io),
                            io_threads,
                            assign,
                            lanes,
                        )))
                    }
                }
            };
            Some(Prefetcher::start(
                Arc::clone(&inner),
                config.prefetch,
                engine,
                decode_workers,
            ))
        } else {
            None
        };
        // Report IO threads only when an async engine actually runs them;
        // the sync pipeline's reads happen inside the decode workers.
        let engine_running = prefetcher.as_ref().is_some_and(|p| p.engine.is_some());
        Ok(Self {
            inner,
            prefetcher,
            owns_dir,
            memory_bytes,
            spilled_bytes,
            placement: config.placement,
            scheduler: config.scheduler.clone(),
            io_threads: if engine_running { engine_io_threads } else { 0 },
            decode_workers,
            ingest_fault: config.fault.clone(),
        })
    }

    /// Open an *empty* live store for streaming ingestion: the shard
    /// files are created up front and every segment subsequently landed
    /// via [`ShardedSpillStore::append_sealed`] goes straight to disk, so
    /// ingest memory stays bounded by the encoder workspace no matter how
    /// many rows arrive. Trainers, tenant readers and the adaptive
    /// migrator may run concurrently from the first append: each segment
    /// becomes visible atomically once sealed. The prefetch pipeline does
    /// not cover appended segments — their reads take the same charged
    /// synchronous path plain visits use — and a fault plan contributes
    /// its `device_profiles` to the shard devices and its write faults to
    /// the append path.
    pub fn open_streaming(features: usize, config: &StoreConfig) -> std::io::Result<Self> {
        let (dir, owns_dir) = resolve_spill_dir(config);
        fs::create_dir_all(&dir)?;
        let n_shards = config.resolved_shards().max(1);
        let store_id = NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed);
        let profiles: &[DeviceProfile] = config
            .fault
            .as_ref()
            .map(|f| f.device_profiles.as_slice())
            .filter(|p| !p.is_empty())
            .unwrap_or(&config.shard_profiles);
        let mut devices = Vec::with_capacity(n_shards);
        let mut shard_meta = Vec::with_capacity(n_shards);
        for s in 0..n_shards {
            let path = dir.join(format!(
                "spill-{}-{}-s{}.bin",
                config.scheme.tag(),
                store_id,
                s
            ));
            let f = OpenOptions::new()
                .create(true)
                .write(true)
                .read(true)
                .truncate(true)
                .open(&path)?;
            let profile = (!profiles.is_empty()).then(|| profiles[s % profiles.len()]);
            devices.push(SpillDevice::with_profile(f, profile));
            shard_meta.push(ShardMeta { path });
        }
        let io = Arc::new(IoShards::new(devices, config.disk_mbps));
        let inner = Arc::new(Inner {
            scheme: config.scheme,
            features,
            entries: Vec::new(),
            spilled_order: Vec::new(),
            locs: RwLock::new(Vec::new()),
            visits: Vec::new(),
            ext: RwLock::new(Vec::new()),
            sealed: AtomicUsize::new(0),
            shard_meta,
            append: Mutex::new(AppendState {
                cursors: vec![0u64; n_shards],
                seq: 0,
                bytes: 0,
            }),
            appender_active: std::sync::atomic::AtomicBool::new(false),
            max_pending: config.max_pending,
            consumed: Mutex::new(0),
            consumed_cv: Condvar::new(),
            peak_pending: AtomicUsize::new(0),
            placement_stats: PlacementStats::default(),
            io,
        });
        // Same scheduling resolution as `from_pending`, so the report and
        // an invalid pin map behave identically for streaming stores.
        let sched = &config.scheduler;
        let decode_workers = sched.resolved_decode_workers(config.prefetch, MAX_PREFETCH_WORKERS);
        let io_threads = sched.resolved_io_threads(config.io, n_shards, config.prefetch);
        sched
            .ring_assignment(n_shards, io_threads)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        Ok(Self {
            inner,
            prefetcher: None,
            owns_dir,
            memory_bytes: 0,
            spilled_bytes: 0,
            placement: config.placement,
            scheduler: config.scheduler.clone(),
            io_threads: 0,
            decode_workers,
            ingest_fault: config.fault.clone(),
        })
    }

    /// Append one sealed (already encoded) segment and its labels to the
    /// live store; returns the index the new batch is visible at. Safe to
    /// call while trainers, tenant readers and the adaptive migrator run:
    /// the bytes land at the target shard's append cursor under the same
    /// mutex rebalance holds end to end (cursor bumps never interleave
    /// with migrations), and the batch only becomes visible —
    /// `num_batches()` only grows — after the write completed. Appends
    /// round-robin across the shard files.
    pub fn append_sealed(&self, bytes: &[u8], labels: Vec<f64>) -> std::io::Result<usize> {
        let inner = &self.inner;
        let n_shards = inner.shard_meta.len();
        assert!(
            n_shards > 0,
            "append_sealed needs shard files; open the store with \
             ShardedSpillStore::open_streaming"
        );
        // Backpressure *before* taking the append mutex: a blocked
        // producer must never hold the lock rebalance and stats readers
        // need. The wait is bounded by consumption, not time — the whole
        // point is that ingestion stalls until a visitor drains a sealed
        // segment.
        if inner.max_pending > 0 {
            let t0 = Instant::now();
            let mut consumed = lock(&inner.consumed);
            let mut stalled = false;
            while inner
                .sealed
                .load(Ordering::Acquire)
                .saturating_sub(*consumed)
                >= inner.max_pending
            {
                stalled = true;
                consumed = wait(&inner.consumed_cv, consumed);
            }
            drop(consumed);
            if stalled {
                inner
                    .io
                    .stats
                    .ingest_stall_ns
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }
        let mut append = lock(&inner.append);
        // The sequence number lives inside the mutex: concurrent callers
        // serialize here and each append gets a unique, gap-free seq.
        let seq = append.seq;
        let shard = seq % n_shards;
        let offset = append.cursors[shard];
        match &self.ingest_fault {
            Some(plan) => plan.faulty_append(&inner.io, shard, offset, bytes, seq as u64)?,
            None => inner.io.devices[shard].file.write_all_at(bytes, offset)?,
        }
        append.cursors[shard] = offset + bytes.len() as u64;
        wlock(&inner.ext).push(Arc::new(ExtEntry {
            loc: RwLock::new(DiskLoc {
                shard,
                offset,
                len: bytes.len(),
            }),
            labels,
            visits: AtomicU64::new(0),
        }));
        append.bytes += bytes.len() as u64;
        append.seq += 1;
        let idx = inner.entries.len() + seq;
        // Publish visibility last: an index below the watermark always
        // resolves to fully-written bytes and a registered ext entry.
        inner.sealed.store(append.seq, Ordering::Release);
        let pending = append.seq.saturating_sub(*lock(&inner.consumed));
        inner.peak_pending.fetch_max(pending, Ordering::Relaxed);
        drop(append);
        Ok(idx)
    }

    /// Segments landed through [`ShardedSpillStore::append_sealed`] so
    /// far (they count toward [`BatchProvider::num_batches`] too).
    pub fn appended_batches(&self) -> usize {
        self.inner.sealed.load(Ordering::Acquire)
    }

    /// Encoded bytes landed through
    /// [`ShardedSpillStore::append_sealed`] so far. Reads under the
    /// append lock, so the value is never ahead of — or behind — the
    /// batches an [`ShardedSpillStore::appended_snapshot`] pairs it with.
    pub fn appended_bytes(&self) -> u64 {
        lock(&self.inner.append).bytes
    }

    /// Consistent `(appended_batches, appended_bytes)` pair, read under
    /// the append lock: `bytes` is exactly the sum of the first
    /// `batches` appended segments, no matter how many appends race the
    /// snapshot. (The lock-free [`ShardedSpillStore::appended_batches`]
    /// may already be ahead of a just-taken snapshot; it can never be
    /// behind it.)
    pub fn appended_snapshot(&self) -> (usize, u64) {
        let append = lock(&self.inner.append);
        (append.seq, append.bytes)
    }

    /// Appended segments sealed but not yet consumed by any visitor
    /// (the gauge [`StoreConfig::with_max_pending`] bounds).
    pub fn pending_appends(&self) -> usize {
        self.inner
            .sealed
            .load(Ordering::Acquire)
            .saturating_sub(*lock(&self.inner.consumed))
    }

    /// High-water mark of [`ShardedSpillStore::pending_appends`]
    /// observed at append time.
    pub fn peak_pending_appends(&self) -> usize {
        self.inner.peak_pending.load(Ordering::Relaxed)
    }

    /// Register an exclusive structured appender (what
    /// [`crate::StoreIngest`] holds for its lifetime): `None` while
    /// another token is live, so two ingest drivers can never interleave
    /// chunks into one store unawares. Raw
    /// [`ShardedSpillStore::append_sealed`] calls stay legal without a
    /// token — they serialize on the append mutex.
    pub fn try_acquire_appender(&self) -> Option<AppenderToken<'_>> {
        self.inner
            .appender_active
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
            .then(|| AppenderToken { inner: &self.inner })
    }

    /// Snapshot the streaming-append state for a checkpoint sidecar:
    /// shard file paths and cursors plus every sealed segment's current
    /// extent and labels (post-migration locations — a checkpoint taken
    /// after a rebalance restores the rebalanced layout). Taken under
    /// the append lock, so it can never capture a half-appended
    /// segment. Panics on a non-streaming store: build-time entries are
    /// reproducible from their source and have no business in a crash
    /// checkpoint.
    pub fn streaming_checkpoint(&self) -> StoreCheckpoint {
        let inner = &self.inner;
        assert!(
            inner.entries.is_empty() && !inner.shard_meta.is_empty(),
            "streaming_checkpoint needs a store opened with open_streaming"
        );
        let append = lock(&inner.append);
        let ext = rlock(&inner.ext);
        let entries = ext
            .iter()
            .take(append.seq)
            .map(|e| {
                let loc = *rlock(&e.loc);
                CheckpointEntry {
                    shard: loc.shard as u32,
                    offset: loc.offset,
                    len: loc.len as u64,
                    labels: e.labels.clone(),
                }
            })
            .collect();
        StoreCheckpoint {
            shard_paths: inner.shard_meta.iter().map(|m| m.path.clone()).collect(),
            cursors: append.cursors.clone(),
            entries,
        }
    }

    /// Re-open a streaming store from a [`StoreCheckpoint`] after a
    /// crash: the shard files named by the checkpoint are opened in
    /// place (never truncated below the recorded cursors — a file
    /// shorter than its cursor means the checkpoint outran the data and
    /// is rejected), any torn bytes past the cursors are truncated
    /// away, and every checkpointed segment becomes visible again.
    /// Appending continues exactly where the crashed run left off.
    pub fn open_streaming_resume(
        features: usize,
        config: &StoreConfig,
        ckpt: &StoreCheckpoint,
    ) -> std::io::Result<Self> {
        use std::io::{Error, ErrorKind};
        let n_shards = ckpt.shard_paths.len();
        if n_shards == 0 || ckpt.cursors.len() != n_shards {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                "checkpoint has no shards or mismatched cursor count",
            ));
        }
        let mut total = 0u64;
        for (i, e) in ckpt.entries.iter().enumerate() {
            let s = e.shard as usize;
            if s >= n_shards || e.offset + e.len > ckpt.cursors[s] {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    format!("checkpoint entry {i} extends past its shard cursor"),
                ));
            }
            total += e.len;
        }
        let profiles: &[DeviceProfile] = config
            .fault
            .as_ref()
            .map(|f| f.device_profiles.as_slice())
            .filter(|p| !p.is_empty())
            .unwrap_or(&config.shard_profiles);
        let mut devices = Vec::with_capacity(n_shards);
        let mut shard_meta = Vec::with_capacity(n_shards);
        for (s, (path, &cursor)) in ckpt.shard_paths.iter().zip(&ckpt.cursors).enumerate() {
            let f = OpenOptions::new().write(true).read(true).open(path)?;
            let len = f.metadata()?.len();
            if len < cursor {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    format!(
                        "shard {s} is {len} bytes but the checkpoint says {cursor}: \
                         the sidecar outran the data and cannot be resumed from"
                    ),
                ));
            }
            // Drop any torn tail past the checkpointed watermark.
            if len > cursor {
                f.set_len(cursor)?;
            }
            let profile = (!profiles.is_empty()).then(|| profiles[s % profiles.len()]);
            devices.push(SpillDevice::with_profile(f, profile));
            shard_meta.push(ShardMeta { path: path.clone() });
        }
        let ext: Vec<Arc<ExtEntry>> = ckpt
            .entries
            .iter()
            .map(|e| {
                Arc::new(ExtEntry {
                    loc: RwLock::new(DiskLoc {
                        shard: e.shard as usize,
                        offset: e.offset,
                        len: e.len as usize,
                    }),
                    labels: e.labels.clone(),
                    visits: AtomicU64::new(0),
                })
            })
            .collect();
        let sealed = ext.len();
        let io = Arc::new(IoShards::new(devices, config.disk_mbps));
        let inner = Arc::new(Inner {
            scheme: config.scheme,
            features,
            entries: Vec::new(),
            spilled_order: Vec::new(),
            locs: RwLock::new(Vec::new()),
            visits: Vec::new(),
            ext: RwLock::new(ext),
            sealed: AtomicUsize::new(sealed),
            shard_meta,
            append: Mutex::new(AppendState {
                cursors: ckpt.cursors.clone(),
                seq: sealed,
                bytes: total,
            }),
            appender_active: std::sync::atomic::AtomicBool::new(false),
            max_pending: config.max_pending,
            consumed: Mutex::new(0),
            consumed_cv: Condvar::new(),
            peak_pending: AtomicUsize::new(0),
            placement_stats: PlacementStats::default(),
            io,
        });
        let sched = &config.scheduler;
        let decode_workers = sched.resolved_decode_workers(config.prefetch, MAX_PREFETCH_WORKERS);
        let io_threads = sched.resolved_io_threads(config.io, n_shards, config.prefetch);
        sched
            .ring_assignment(n_shards, io_threads)
            .map_err(|e| Error::new(ErrorKind::InvalidInput, e))?;
        Ok(Self {
            inner,
            prefetcher: None,
            owns_dir: None,
            memory_bytes: 0,
            spilled_bytes: 0,
            placement: config.placement,
            scheduler: config.scheduler.clone(),
            io_threads: 0,
            decode_workers,
            ingest_fault: config.fault.clone(),
        })
    }

    /// Number of batches kept in memory.
    pub fn in_memory_batches(&self) -> usize {
        self.inner
            .entries
            .iter()
            .filter(|(s, _)| matches!(s, Slot::Memory(_)))
            .count()
    }

    /// Number of batches on disk.
    pub fn spilled_batches(&self) -> usize {
        self.inner.entries.len() - self.in_memory_batches()
    }

    /// Number of shard files backing the spill.
    pub fn num_shards(&self) -> usize {
        self.inner.shard_meta.len()
    }

    /// Bytes of spilled batches currently assigned to each shard (follows
    /// adaptive migrations; superseded copies left behind by
    /// append-and-repoint are not counted).
    pub fn shard_bytes(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.inner.shard_meta.len()];
        for loc in rlock(&self.inner.locs).iter() {
            out[loc.shard] += loc.len as u64;
        }
        for e in rlock(&self.inner.ext).iter() {
            let loc = *rlock(&e.loc);
            out[loc.shard] += loc.len as u64;
        }
        out
    }

    /// Bytes of encoded batches resident in memory.
    pub fn memory_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// Bytes of encoded batches on disk.
    pub fn spilled_bytes(&self) -> usize {
        self.spilled_bytes
    }

    /// Total encoded footprint.
    pub fn total_bytes(&self) -> usize {
        self.memory_bytes + self.spilled_bytes
    }

    /// The scheme this store encodes with.
    pub fn scheme(&self) -> Scheme {
        self.inner.scheme
    }

    /// Cumulative IO statistics.
    pub fn stats(&self) -> &IoStats {
        &self.inner.io.stats
    }

    /// Whether the prefetch pipeline is active.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetcher.is_some()
    }

    // -- Crate-private seam for the multi-tenant layer ([`crate::serve`]).
    // Tenant providers read spilled batches directly (cache-miss path)
    // instead of through the prefetch pipeline, so they need the raw
    // pieces `visit` composes: slot inspection, the shared visit/heat
    // counters, the charged device read, and the bandwidth profile.

    /// Spill id of entry `idx`, when the entry is disk-resident.
    pub(crate) fn spill_id(&self, idx: usize) -> Option<usize> {
        match &self.inner.entries[idx].0 {
            Slot::Disk(id) => Some(*id),
            Slot::Memory(_) => None,
        }
    }

    /// Labels of entry `idx`.
    pub(crate) fn entry_labels(&self, idx: usize) -> &[f64] {
        &self.inner.entries[idx].1
    }

    /// Bump the shared per-batch visit counter (the adaptive planner's
    /// and the tenant cache's heat signal) and return the new count.
    pub(crate) fn record_spill_visit(&self, id: usize) -> u64 {
        self.inner.visits[id].fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current `(shard, len)` of spill id `id` (may change across
    /// adaptive rebalances; the bytes themselves never do).
    pub(crate) fn spill_shard_len(&self, id: usize) -> (usize, usize) {
        let loc = rlock(&self.inner.locs)[id];
        (loc.shard, loc.len)
    }

    /// Read the current encoded bytes of spill id `id` through the
    /// charged device model (counts `disk_reads`/`bytes_read`, feeds the
    /// bandwidth profiler). Returns the shard that served the read.
    pub(crate) fn read_spill_bytes(&self, id: usize, buf: &mut Vec<u8>) -> usize {
        let loc = rlock(&self.inner.locs)[id];
        self.inner
            .io
            .read_range(loc.shard, loc.offset, loc.len, buf)
            .expect("read spill file");
        loc.shard
    }

    /// Parse encoded spill bytes (tenant cache hits and miss reads).
    pub(crate) fn decode_spill(&self, bytes: &[u8]) -> AnyBatch {
        Scheme::from_bytes(bytes).expect("spill data corrupted")
    }

    /// Per-shard EWMA bandwidth estimate in bytes/sec, when observed.
    pub(crate) fn shard_ewma_bps(&self, shard: usize) -> Option<f64> {
        self.inner
            .io
            .profile
            .estimate_mbps(shard)
            .map(|mbps| mbps * 1e6)
    }

    /// Schedule the next spilled indices after `idx` (cyclically, so the
    /// pipeline stays warm across epoch boundaries) that are not already
    /// queued, in flight, or decoded — sync mode only. The walk runs over
    /// `Inner::spilled_order`, never the full entry table, and the queue
    /// is capped at `depth`: visits consume one slot each, so an uncapped
    /// queue would grow until every spilled index sat in it and the
    /// `queue.contains` membership scan became O(n) under the shared
    /// lock. The cap keeps that scan O(depth).
    fn schedule_lookahead(&self, st: &mut PrefetchState, idx: usize, depth: usize) {
        let order = &self.inner.spilled_order;
        let start = order.partition_point(|&i| i <= idx);
        for k in 0..order.len() {
            if st.queue.len() >= depth {
                break;
            }
            let i = order[(start + k) % order.len()];
            if !st.pending.contains(&i) && !st.ready.contains_key(&i) && !st.queue.contains(&i) {
                st.queue.push_back(i);
            }
        }
    }

    /// Materialize the spilled batch `idx`, through the prefetch pipeline
    /// when one is running.
    fn fetch(&self, idx: usize, loc: DiskLoc) -> AnyBatch {
        let Some(pf) = &self.prefetcher else {
            return self.inner.read_disk_sync(loc);
        };
        let stats = &self.inner.io.stats;
        stats.spill_requests.fetch_add(1, Ordering::Relaxed);
        let mut st = lock(&pf.shared.state);
        // Schedule the lookahead window first so the pipeline overlaps
        // the next batches with whatever this visit does. In async mode
        // scheduling *is* submission — the reads are in flight before we
        // even check our own slot.
        match &pf.engine {
            Some(engine) => {
                submit_lookahead(&self.inner, engine.as_ref(), &mut st, Some(idx), pf.depth)
            }
            None => {
                self.schedule_lookahead(&mut st, idx, pf.depth);
                pf.shared.work.notify_all();
            }
        }
        loop {
            if let Some(b) = st.ready.remove(&idx) {
                drop(st);
                stats.prefetch_hits.fetch_add(1, Ordering::Relaxed);
                // A decoded slot was released: let backpressured sync
                // workers run (async submission re-fills on later visits).
                pf.shared.work.notify_all();
                return b;
            }
            if st.pending.contains(&idx) {
                // In flight: the IO overlaps our wait, still a hit.
                st = wait(&pf.shared.done, st);
                continue;
            }
            // Not scheduled (or still queued in sync mode): claim it and
            // read inline.
            if let Some(pos) = st.queue.iter().position(|&q| q == idx) {
                st.queue.remove(pos);
            }
            drop(st);
            stats.prefetch_misses.fetch_add(1, Ordering::Relaxed);
            return self.inner.read_disk_sync(loc);
        }
    }

    /// Current placement state: policy, resolved scheduling, rebalance and
    /// migration counters, per-shard EWMA bandwidth estimates and the
    /// bytes currently assigned to each shard.
    pub fn placement_report(&self) -> PlacementReport {
        let ps = &self.inner.placement_stats;
        PlacementReport {
            policy: self.placement,
            pinning: self.scheduler.pinning.clone(),
            io_threads: self.io_threads,
            decode_workers: self.decode_workers,
            rebalances: ps.rebalances.load(Ordering::Relaxed),
            migrated_batches: ps.migrated_batches.load(Ordering::Relaxed),
            migrated_bytes: ps.migrated_bytes.load(Ordering::Relaxed),
            shard_ewma_mbps: self.inner.io.profile.snapshot_mbps(),
            shard_bytes: self.shard_bytes(),
        }
    }

    /// Re-plan the adaptive placement from the observed per-shard
    /// bandwidth EWMAs and the per-batch visit counts, then migrate every
    /// batch whose planned shard is meaningfully faster than its current
    /// one ([`REBALANCE_HYSTERESIS`]). Returns the number of batches
    /// migrated.
    ///
    /// Migration is append-and-repoint: the batch's bytes are copied to
    /// the end of the target shard file and the location table repointed,
    /// so reads already in flight against the old location still return
    /// the right bytes — the pipeline never has to drain. Skipped until
    /// every shard has at least one profiler observation (there is
    /// nothing measured to plan by before that).
    pub fn rebalance(&self) -> usize {
        let inner = &self.inner;
        let n_shards = inner.shard_meta.len();
        if n_shards < 2 {
            return 0;
        }
        if (0..n_shards).any(|s| inner.io.profile.samples(s) == 0) {
            return 0;
        }
        // The append lock doubles as the placement mutation lock: one
        // rebalance at a time, and append offsets stay consistent.
        let mut append = lock(&inner.append);
        inner
            .placement_stats
            .rebalances
            .fetch_add(1, Ordering::Relaxed);
        let bw: Vec<f64> = (0..n_shards)
            .map(|s| inner.io.profile.estimate_mbps(s).unwrap_or(1.0))
            .collect();
        let current: Vec<DiskLoc> = rlock(&inner.locs).clone();
        // Streaming-appended segments participate in the plan too: with
        // the append mutex held no new entry can seal mid-pass, so the
        // snapshot is consistent. Their ids follow the build-time spill
        // ids in plan order.
        let ext: Vec<Arc<ExtEntry>> = rlock(&inner.ext).clone();
        let all_locs: Vec<DiskLoc> = current
            .iter()
            .copied()
            .chain(ext.iter().map(|e| *rlock(&e.loc)))
            .collect();
        let sizes: Vec<usize> = all_locs.iter().map(|l| l.len).collect();
        let hot: Vec<u64> = inner
            .visits
            .iter()
            .chain(ext.iter().map(|e| &e.visits))
            .map(|v| v.load(Ordering::Relaxed))
            .collect();
        let capacity = vec![u64::MAX; n_shards];
        let plan = plan_adaptive(&sizes, &hot, &bw, &capacity);
        let mut moved = 0usize;
        let mut moved_bytes = 0u64;
        let mut buf = Vec::new();
        for (id, (&target, loc)) in plan.iter().zip(&all_locs).enumerate() {
            if target == loc.shard || bw[target] < REBALANCE_HYSTERESIS * bw[loc.shard] {
                continue;
            }
            // Copy through the charged read path (migration pays the
            // source device's bandwidth and shows up in IoStats), then
            // append to the target shard and repoint.
            if inner
                .io
                .read_range(loc.shard, loc.offset, loc.len, &mut buf)
                .is_err()
            {
                continue; // keep the old location; the visit path surfaces IO errors
            }
            let offset = append.cursors[target];
            if inner.io.devices[target]
                .file
                .write_all_at(&buf, offset)
                .is_err()
            {
                continue;
            }
            append.cursors[target] += loc.len as u64;
            let new_loc = DiskLoc {
                shard: target,
                offset,
                len: loc.len,
            };
            if id < current.len() {
                wlock(&inner.locs)[id] = new_loc;
            } else {
                *wlock(&ext[id - current.len()].loc) = new_loc;
            }
            moved += 1;
            moved_bytes += loc.len as u64;
        }
        inner
            .placement_stats
            .migrated_batches
            .fetch_add(moved as u64, Ordering::Relaxed);
        inner
            .placement_stats
            .migrated_bytes
            .fetch_add(moved_bytes, Ordering::Relaxed);
        moved
    }
}

/// A migration must buy at least this bandwidth ratio between the target
/// and the current shard, or the batch stays put. Keeps statistically
/// flat profiles (every shard within noise of each other) from shuffling
/// batches every epoch for nothing.
pub const REBALANCE_HYSTERESIS: f64 = 1.25;

/// Snapshot of the placement/scheduling state
/// ([`ShardedSpillStore::placement_report`]; the CLI prints it as the
/// machine-parseable `placement:` line).
#[derive(Clone, Debug)]
pub struct PlacementReport {
    pub policy: ShardPlacement,
    pub pinning: Pinning,
    /// Async-engine IO threads actually running (0 when the pipeline is
    /// sync or prefetch is off).
    pub io_threads: usize,
    pub decode_workers: usize,
    /// Adaptive rebalance passes that had profiler signal to plan with.
    pub rebalances: u64,
    /// Batches the adaptive planner migrated to a different shard.
    pub migrated_batches: u64,
    /// Bytes those migrations copied.
    pub migrated_bytes: u64,
    /// Per-shard EWMA bandwidth estimates in MB/s (0.0 = never observed).
    pub shard_ewma_mbps: Vec<f64>,
    /// Bytes of spilled batches currently assigned to each shard.
    pub shard_bytes: Vec<u64>,
}

/// Decide which shard each spilled batch (in visit order) lands on at
/// build time. `Adaptive` starts from the `Pack` layout (file-adjacent
/// runs, so ring coalescing works from epoch one) and diverges only once
/// the runtime profiler has measured the shards
/// ([`ShardedSpillStore::rebalance`]).
pub fn place_spilled(sizes: &[usize], n_shards: usize, placement: ShardPlacement) -> Vec<usize> {
    match placement {
        ShardPlacement::Stripe => (0..sizes.len()).map(|i| i % n_shards).collect(),
        ShardPlacement::Pack | ShardPlacement::Adaptive => {
            let total: usize = sizes.iter().sum();
            // A run must hold at least a couple of batches for adjacency
            // to buy anything, but never so many that a shard ends up
            // with no run at all. The byte target alone cannot guarantee
            // the latter under skew (one huge batch closes a run while
            // the tiny remainder never reaches the target again), so runs
            // are additionally capped at ⌊batches/shards⌋ batches — that
            // forces at least `n_shards` runs, and runs round-robin.
            let avg = total.div_ceil(sizes.len().max(1));
            let lo = (total / n_shards / PACK_RUNS_PER_SHARD).max(1);
            let hi = (total / n_shards).max(1);
            let run_target = (2 * avg).clamp(lo, hi.max(lo));
            let max_run_batches = (sizes.len() / n_shards).max(1);
            let mut shard = 0usize;
            let mut run_bytes = 0usize;
            let mut run_batches = 0usize;
            let mut out = Vec::with_capacity(sizes.len());
            for &sz in sizes {
                out.push(shard);
                run_bytes += sz;
                run_batches += 1;
                if run_bytes >= run_target || run_batches >= max_run_batches {
                    shard = (shard + 1) % n_shards;
                    run_bytes = 0;
                    run_batches = 0;
                }
            }
            out
        }
    }
}

/// The adaptive placement plan: assign every spilled batch to a shard so
/// the estimated epoch completion time is minimized on heterogeneous
/// devices. Batches are ranked hottest first (visit count descending,
/// index ascending for determinism) and greedily placed on the shard with
/// the smallest projected finish time `(assigned_bytes + size) / mbps`
/// whose byte `capacity` the batch still fits — LPT scheduling onto
/// machines with speeds, which packs hot bytes onto fast shards in
/// proportion to measured bandwidth. When no shard has capacity left the
/// batch falls back to the least-loaded-by-time shard, so every batch is
/// always assigned exactly once.
///
/// Pure and deterministic: same inputs, same plan. `sizes`, `hotness` and
/// the returned assignment are indexed by spilled-batch id; `mbps` and
/// `capacity` by shard. Non-finite or non-positive speeds are treated as
/// a tiny positive speed so a never-measured shard never divides by zero.
pub fn plan_adaptive(
    sizes: &[usize],
    hotness: &[u64],
    mbps: &[f64],
    capacity: &[u64],
) -> Vec<usize> {
    assert_eq!(sizes.len(), hotness.len(), "one hotness count per batch");
    assert_eq!(mbps.len(), capacity.len(), "one capacity per shard");
    let n_shards = mbps.len();
    assert!(n_shards > 0, "need at least one shard");
    let speed: Vec<f64> = mbps
        .iter()
        .map(|&m| if m.is_finite() && m > 0.0 { m } else { 1e-6 })
        .collect();
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(hotness[i]), i));
    let mut load = vec![0u64; n_shards];
    let mut out = vec![0usize; sizes.len()];
    for i in order {
        let sz = sizes[i] as u64;
        let finish = |s: usize| (load[s] + sz) as f64 / speed[s];
        let mut best: Option<usize> = None;
        for s in 0..n_shards {
            if load[s] + sz > capacity[s] {
                continue;
            }
            if best.is_none_or(|b| finish(s) < finish(b)) {
                best = Some(s);
            }
        }
        // Capacity exhausted everywhere: least projected finish time wins
        // (coverage beats the capacity hint — every batch must land).
        let s = best.unwrap_or_else(|| {
            (0..n_shards)
                .min_by(|&a, &b| finish(a).total_cmp(&finish(b)))
                .unwrap()
        });
        load[s] += sz;
        out[i] = s;
    }
    out
}

impl BatchProvider for ShardedSpillStore {
    fn num_batches(&self) -> usize {
        // Grows while streaming ingest appends: build-time entries plus
        // the sealed watermark. `Acquire` pairs with the seal's `Release`
        // so an index this returns always resolves to fully-written bytes.
        self.inner.entries.len() + self.inner.sealed.load(Ordering::Acquire)
    }

    fn num_features(&self) -> usize {
        self.inner.features
    }

    fn visit(&self, idx: usize, f: &mut dyn FnMut(&AnyBatch, &[f64])) {
        let base = self.inner.entries.len();
        if idx >= base {
            // Streaming-appended segment: same charged synchronous read
            // path plain visits use. Clone the entry out of a brief table
            // lock so the IO and decode run lock-free.
            let e = Arc::clone(&rlock(&self.inner.ext)[idx - base]);
            e.visits.fetch_add(1, Ordering::Relaxed);
            let loc = *rlock(&e.loc);
            let b = self.inner.read_disk_sync(loc);
            f(&b, &e.labels);
            // Advance the consumed watermark *after* the visitor is done
            // with the batch and release any producer blocked on the
            // sealed-chunk budget.
            let ext_i = idx - base;
            let mut consumed = lock(&self.inner.consumed);
            if ext_i + 1 > *consumed {
                *consumed = ext_i + 1;
                drop(consumed);
                self.inner.consumed_cv.notify_all();
            }
            return;
        }
        let (slot, labels) = &self.inner.entries[idx];
        match slot {
            Slot::Memory(b) => f(b, labels),
            Slot::Disk(id) => {
                // Hotness signal for the adaptive planner.
                self.inner.visits[*id].fetch_add(1, Ordering::Relaxed);
                let loc = rlock(&self.inner.locs)[*id];
                let b = self.fetch(idx, loc);
                f(&b, labels);
            }
        }
    }

    /// Epoch-boundary feedback from the trainer: the adaptive planner
    /// re-packs hot batches onto the shards measured fastest.
    fn end_epoch(&self) {
        if self.placement == ShardPlacement::Adaptive {
            self.rebalance();
        }
    }
}

impl Drop for ShardedSpillStore {
    fn drop(&mut self) {
        // Stop the workers before unlinking their files.
        self.prefetcher = None;
        // With the prefetcher (and its engine) gone, ours is the only
        // strong ref to Inner and its IoShards left, so the shard files
        // can be closed before the unlink — the portable (non-unix) path
        // cannot delete a file that is still open. Best-effort: if the
        // ref count is unexpectedly higher we skip closing (unix unlinks
        // open files fine).
        if let Some(inner) = Arc::get_mut(&mut self.inner) {
            inner.io = Arc::new(IoShards::new(Vec::new(), None));
        }
        for shard in &self.inner.shard_meta {
            let _ = fs::remove_file(&shard.path);
        }
        if let Some(d) = &self.owns_dir {
            let _ = fs::remove_dir(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_preset, DatasetPreset};
    use std::time::{Duration, Instant};

    fn dataset() -> (DenseMatrix, Vec<f64>) {
        let ds = generate_preset(DatasetPreset::CensusLike, 600, 21);
        (ds.x, ds.labels)
    }

    #[test]
    fn everything_fits_with_big_budget() {
        let (x, y) = dataset();
        let store =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Toc, 100, usize::MAX)).unwrap();
        assert_eq!(store.num_batches(), 6);
        assert_eq!(store.spilled_batches(), 0);
        assert_eq!(store.stats().disk_reads.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn zero_budget_spills_everything_and_roundtrips() {
        let (x, y) = dataset();
        for scheme in [Scheme::Toc, Scheme::Den, Scheme::Gzip, Scheme::Cla] {
            let store = MiniBatchStore::build(&x, &y, &StoreConfig::new(scheme, 150, 0)).unwrap();
            assert_eq!(store.spilled_batches(), 4, "{}", scheme.name());
            // Visiting a spilled batch does real IO and returns the exact
            // batch content.
            store.visit(2, &mut |b, labels| {
                assert_eq!(b.decode(), x.slice_rows(300, 450));
                assert_eq!(labels, &y[300..450]);
            });
            assert!(store.stats().disk_reads.load(Ordering::Relaxed) >= 1);
        }
    }

    #[test]
    fn partial_budget_splits_memory_and_disk() {
        let (x, y) = dataset();
        let probe =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Csr, 100, usize::MAX)).unwrap();
        let half = probe.memory_bytes() / 2;
        let store =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Csr, 100, half)).unwrap();
        assert!(store.in_memory_batches() >= 1);
        assert!(store.spilled_batches() >= 1);
        assert_eq!(store.in_memory_batches() + store.spilled_batches(), 6);
        // All batches still decode correctly.
        for i in 0..store.num_batches() {
            store.visit(i, &mut |b, _| {
                assert_eq!(b.decode(), x.slice_rows(i * 100, (i + 1) * 100));
            });
        }
    }

    #[test]
    fn toc_fits_where_den_spills() {
        // The crux of Table 6: pick a budget between the TOC footprint and
        // the DEN footprint.
        let (x, y) = dataset();
        let toc_total =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Toc, 250, usize::MAX))
                .unwrap()
                .total_bytes();
        let budget = toc_total * 2;
        let toc =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Toc, 250, budget)).unwrap();
        let den =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Den, 250, budget)).unwrap();
        assert_eq!(toc.spilled_batches(), 0);
        assert!(den.spilled_batches() > 0);
    }

    #[test]
    fn trainer_runs_over_spilled_store() {
        use toc_ml::mgd::{MgdConfig, ModelSpec, Trainer};
        use toc_ml::LossKind;
        let (x, y) = dataset();
        let store = MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Toc, 100, 0)).unwrap();
        let trainer = Trainer::new(MgdConfig {
            epochs: 8,
            lr: 0.3,
            ..Default::default()
        });
        let mut report = trainer.train(&ModelSpec::Linear(LossKind::Logistic), &store, None);
        let eval = Scheme::Den.encode(&x);
        let err = report.model.error_rate(&eval, &y);
        assert!(err < 0.25, "error {err}");
        assert!(store.stats().disk_reads.load(Ordering::Relaxed) >= 8 * 6);
    }

    #[test]
    fn spill_file_removed_on_drop() {
        let (x, y) = dataset();
        let store = MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Den, 200, 0)).unwrap();
        let path = store.spill_path.clone().unwrap();
        assert!(path.exists());
        drop(store);
        assert!(!path.exists());
    }

    #[test]
    fn sharded_store_stripes_across_shard_files() {
        let (x, y) = dataset();
        let config = StoreConfig::new(Scheme::Toc, 100, 0).with_shards(3);
        let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
        assert_eq!(store.num_batches(), 6);
        assert_eq!(store.spilled_batches(), 6);
        assert_eq!(store.num_shards(), 3);
        // Round-robin striping: every shard holds some bytes.
        let per_shard = store.shard_bytes();
        assert_eq!(per_shard.len(), 3);
        assert!(per_shard.iter().all(|&b| b > 0), "{per_shard:?}");
        assert_eq!(per_shard.iter().sum::<u64>(), store.spilled_bytes() as u64);
        // Shard paths exist while the store lives and are removed on drop.
        let paths: Vec<PathBuf> = store
            .inner
            .shard_meta
            .iter()
            .map(|s| s.path.clone())
            .collect();
        assert!(paths.iter().all(|p| p.exists()));
        for i in 0..store.num_batches() {
            store.visit(i, &mut |b, labels| {
                assert_eq!(b.decode(), x.slice_rows(i * 100, (i + 1) * 100));
                assert_eq!(labels, &y[i * 100..(i + 1) * 100]);
            });
        }
        drop(store);
        assert!(paths.iter().all(|p| !p.exists()));
    }

    #[test]
    fn pack_placement_keeps_consecutive_batches_file_adjacent() {
        let (x, y) = dataset();
        let config = StoreConfig::new(Scheme::Toc, 100, 0)
            .with_shards(2)
            .with_placement(ShardPlacement::Pack);
        let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
        assert_eq!(store.spilled_batches(), 6);
        // Within a run, consecutive visit-order batches are back to back
        // in the same shard file — the layout the ring engine coalesces.
        let locs: Vec<DiskLoc> = (0..6).map(|i| store.inner.disk_loc(i).unwrap()).collect();
        let mut adjacent_pairs = 0;
        for w in locs.windows(2) {
            if w[0].shard == w[1].shard {
                assert_eq!(
                    w[1].offset,
                    w[0].offset + w[0].len as u64,
                    "same-shard consecutive batches must be adjacent"
                );
                adjacent_pairs += 1;
            }
        }
        assert!(adjacent_pairs >= 1, "pack produced no adjacency: {locs:?}");
        // Still byte-exact.
        for i in 0..store.num_batches() {
            store.visit(i, &mut |b, _| {
                assert_eq!(b.decode(), x.slice_rows(i * 100, (i + 1) * 100));
            });
        }
        // Every spilled byte landed somewhere.
        assert_eq!(
            store.shard_bytes().iter().sum::<u64>(),
            store.spilled_bytes() as u64
        );
    }

    #[test]
    fn sharded_partial_budget_matches_flat_layout() {
        let (x, y) = dataset();
        let probe =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Csr, 100, usize::MAX)).unwrap();
        let budget = probe.memory_bytes() / 2;
        let config = StoreConfig::new(Scheme::Csr, 100, budget).with_shards(2);
        let flat =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Csr, 100, budget)).unwrap();
        let sharded = ShardedSpillStore::build(&x, &y, &config).unwrap();
        assert_eq!(flat.in_memory_batches(), sharded.in_memory_batches());
        assert_eq!(flat.spilled_batches(), sharded.spilled_batches());
        assert_eq!(flat.total_bytes(), sharded.total_bytes());
    }

    #[test]
    fn prefetch_pipeline_serves_decoded_batches() {
        let (x, y) = dataset();
        let config = StoreConfig::new(Scheme::Toc, 100, 0)
            .with_shards(2)
            .with_prefetch(3);
        let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
        assert!(store.prefetch_enabled());
        // Each visit keeps the lookahead window ahead of it scheduled
        // (whether the visit itself was a hit or a claimed miss). Before
        // visiting batches 1–3, wait — bounded, polling the pipeline
        // state rather than sleeping a fixed amount — until the workers
        // have decoded that batch; the visit must then be served from the
        // pipeline regardless of how threads were scheduled.
        store.visit(0, &mut |b, _| {
            assert_eq!(b.decode(), x.slice_rows(0, 100));
        });
        let before = store.stats().snapshot();
        let pf = store.prefetcher.as_ref().unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        for i in 1..=3 {
            loop {
                {
                    let st = lock(&pf.shared.state);
                    if st.ready.contains_key(&i) {
                        break;
                    }
                }
                assert!(
                    Instant::now() < deadline,
                    "prefetch workers stalled on batch {i}"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
            store.visit(i, &mut |b, _| {
                assert_eq!(b.decode(), x.slice_rows(i * 100, (i + 1) * 100));
            });
        }
        let after = store.stats().snapshot();
        assert_eq!(after.prefetch_hits - before.prefetch_hits, 3, "{after:?}");
        // Finish the sweep: every spilled visit is accounted as exactly
        // one hit or miss, and every visit consumed exactly one read; at
        // most a lookahead window of reads stays unconsumed.
        for i in 4..store.num_batches() {
            store.visit(i, &mut |b, _| {
                assert_eq!(b.decode(), x.slice_rows(i * 100, (i + 1) * 100));
            });
        }
        let s = store.stats().snapshot();
        let visits = store.num_batches() as u64;
        assert_eq!(s.prefetch_hits + s.prefetch_misses, visits);
        assert_eq!(s.spill_requests, visits);
        assert!(s.disk_reads >= visits);
        assert!(
            s.disk_reads <= visits + 2 * 3 + MAX_PREFETCH_WORKERS as u64,
            "{s:?}"
        );
    }

    #[test]
    fn async_engines_serve_byte_exact_batches() {
        let (x, y) = dataset();
        for (io, placement) in [
            (IoEngineKind::Pool, ShardPlacement::Stripe),
            (IoEngineKind::Ring, ShardPlacement::Stripe),
            (IoEngineKind::Ring, ShardPlacement::Pack),
        ] {
            let config = StoreConfig::new(Scheme::Toc, 100, 0)
                .with_shards(2)
                .with_prefetch(3)
                .with_io(io)
                .with_placement(placement);
            let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
            assert!(store.prefetch_enabled());
            for _epoch in 0..2 {
                for i in 0..store.num_batches() {
                    store.visit(i, &mut |b, labels| {
                        assert_eq!(b.decode(), x.slice_rows(i * 100, (i + 1) * 100));
                        assert_eq!(labels, &y[i * 100..(i + 1) * 100]);
                    });
                }
            }
            let s = store.stats().snapshot_stable();
            s.assert_consistent();
            assert_eq!(s.spill_requests, 12, "{io:?} {s:?}");
            assert!(s.submitted >= 1, "async engine never used: {s:?}");
            // Every visit consumed one engine or sync read; coalesced
            // riders count toward coverage.
            assert!(
                s.disk_reads + s.coalesced_reads >= s.spill_requests,
                "{io:?} {s:?}"
            );
            // Note: no lower bound on `coalesced_reads` — whether adjacent
            // submissions land in one ring burst is scheduling-dependent
            // (a ring thread that wakes per submission drains bursts of
            // one). The merge logic itself is covered deterministically
            // by `io::tests::plan_runs_merges_adjacent_ranges_deterministically`.
        }
    }

    #[test]
    fn bandwidth_throttle_accounts_per_shard() {
        let (x, y) = dataset();
        let mbps = 400.0;
        let config = StoreConfig::new(Scheme::Den, 150, 0)
            .with_shards(2)
            .with_disk_mbps(mbps);
        let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
        let t0 = Instant::now();
        for i in 0..store.num_batches() {
            store.visit(i, &mut |_, _| {});
        }
        let elapsed = t0.elapsed();
        let s = store.stats().snapshot();
        // The accounted delay is deterministic: sum of len/mbps per read.
        let expected: u64 = (0..store.num_batches())
            .map(|i| {
                let loc = store.inner.disk_loc(i).expect("spilled");
                (loc.len as f64 / (mbps * 1e6) * 1e9) as u64
            })
            .sum();
        assert_eq!(s.throttle_ns, expected);
        // A sequential sweep really slept for (at least) the simulated time
        // of the slowest shard.
        let slowest_shard_ns = store
            .shard_bytes()
            .iter()
            .map(|&b| (b as f64 / (mbps * 1e6) * 1e9) as u64)
            .max()
            .unwrap();
        assert!(elapsed >= Duration::from_nanos(slowest_shard_ns));
    }

    #[test]
    fn truncated_shard_fails_loudly_instead_of_hanging() {
        let (x, y) = dataset();
        for io in [IoEngineKind::Sync, IoEngineKind::Pool, IoEngineKind::Ring] {
            let config = StoreConfig::new(Scheme::Den, 100, 0)
                .with_shards(2)
                .with_prefetch(2)
                .with_io(io);
            let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
            // Truncate every shard behind the store's back. The prefetch
            // seed window only covers the first batches, so batch 4 is
            // guaranteed to be read after the truncation — by the
            // pipeline (whose failure must be contained and must not
            // strand the index in `pending`) or by the visitor's
            // synchronous path. Either way the visit must surface the IO
            // failure instead of waiting forever.
            for shard in &store.inner.shard_meta {
                OpenOptions::new()
                    .write(true)
                    .truncate(true)
                    .open(&shard.path)
                    .unwrap();
            }
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                store.visit(4, &mut |_, _| {});
            }));
            assert!(
                result.is_err(),
                "visit over a truncated shard must fail ({io:?})"
            );
        }
    }

    #[test]
    fn in_memory_sharded_store_has_no_shards() {
        let (x, y) = dataset();
        let config = StoreConfig::new(Scheme::Toc, 100, usize::MAX)
            .with_shards(4)
            .with_prefetch(2);
        let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
        assert_eq!(store.num_shards(), 0);
        assert!(!store.prefetch_enabled());
        assert_eq!(store.spilled_batches(), 0);
        for i in 0..store.num_batches() {
            store.visit(i, &mut |b, _| {
                assert_eq!(b.decode(), x.slice_rows(i * 100, (i + 1) * 100));
            });
        }
        assert_eq!(store.stats().snapshot(), IoSnapshot::default());
    }

    #[test]
    fn place_spilled_policies() {
        // Stripe: round robin regardless of size.
        assert_eq!(
            place_spilled(&[10, 10, 10, 10], 2, ShardPlacement::Stripe),
            vec![0, 1, 0, 1]
        );
        // Pack: equal sizes, 2 shards, 8 batches → run target 2·avg=20,
        // so pairs of consecutive batches stay file-adjacent.
        assert_eq!(
            place_spilled(&[10; 8], 2, ShardPlacement::Pack),
            vec![0, 0, 1, 1, 0, 0, 1, 1]
        );
        // Pack with small batches: several consecutive batches share a
        // run before it closes.
        let a = place_spilled(&[1; 80], 2, ShardPlacement::Pack);
        assert_eq!(a.len(), 80);
        // run target = 80/2/4 = 10 → runs of 10 consecutive batches.
        assert_eq!(&a[..10], &[0; 10]);
        assert_eq!(&a[10..20], &[1; 10]);
        // Bytes balance across shards.
        assert_eq!(a.iter().filter(|&&s| s == 0).count(), 40);
        // Skewed sizes: one huge batch must not starve later shards — the
        // batch-count run cap guarantees every shard still gets a run.
        let a = place_spilled(&[1000, 1, 1, 1], 4, ShardPlacement::Pack);
        assert_eq!(a, vec![0, 1, 2, 3]);
        for n_shards in 1..=4 {
            for sizes in [&[7usize, 900, 3, 3, 3, 900, 1][..], &[5; 9][..]] {
                let a = place_spilled(sizes, n_shards, ShardPlacement::Pack);
                for s in 0..n_shards {
                    assert!(a.contains(&s), "shard {s} empty: {a:?} ({sizes:?})");
                }
            }
        }
        // Adaptive starts from the pack layout.
        assert_eq!(
            place_spilled(&[10; 8], 2, ShardPlacement::Adaptive),
            place_spilled(&[10; 8], 2, ShardPlacement::Pack)
        );
    }

    #[test]
    fn plan_adaptive_packs_hot_bytes_onto_fast_shards() {
        // Equal sizes, flat hotness: load splits roughly proportional to
        // measured speed (400 of 500 MB/s → ~80% of batches on shard 0).
        let sizes = vec![10usize; 100];
        let hot = vec![1u64; 100];
        let bw = [400.0, 50.0, 50.0];
        let caps = [u64::MAX; 3];
        let plan = plan_adaptive(&sizes, &hot, &bw, &caps);
        assert_eq!(plan.len(), 100);
        assert!(plan.iter().all(|&s| s < 3));
        let on_fast = plan.iter().filter(|&&s| s == 0).count();
        assert!((70..=90).contains(&on_fast), "{on_fast}");
        // Deterministic: same inputs, same plan.
        assert_eq!(plan, plan_adaptive(&sizes, &hot, &bw, &caps));
        // The hottest batch lands on the fastest shard.
        let plan2 = plan_adaptive(&[5; 4], &[0, 0, 9, 0], &[100.0, 1.0], &[u64::MAX; 2]);
        assert_eq!(plan2[2], 0);
        // Capacity respected: the fast shard only has room for one batch,
        // so the other overflows to the slow one despite the speed gap.
        let plan3 = plan_adaptive(&[10, 10], &[1, 1], &[1000.0, 1.0], &[10, 100]);
        assert_eq!(plan3.iter().filter(|&&s| s == 0).count(), 1);
        // Infeasible capacity still assigns every batch (coverage wins).
        let plan4 = plan_adaptive(&[10, 10], &[1, 1], &[1.0, 1.0], &[0, 0]);
        assert_eq!(plan4.len(), 2);
        // Degenerate speeds must not divide by zero.
        let _ = plan_adaptive(&[1], &[0], &[0.0], &[u64::MAX]);
    }

    #[test]
    fn adaptive_rebalance_migrates_to_fast_shard_and_stays_byte_identical() {
        let (x, y) = dataset();
        let config = StoreConfig::new(Scheme::Den, 100, 0)
            .with_shards(2)
            .with_placement(ShardPlacement::Adaptive)
            .with_shard_mbps(vec![2000.0, 10.0]);
        let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
        assert_eq!(store.spilled_batches(), 6);
        let initial = store.shard_bytes();
        assert!(initial.iter().all(|&b| b > 0), "{initial:?}");
        // Before any observation a rebalance has no signal and must no-op.
        assert_eq!(store.rebalance(), 0);
        assert_eq!(store.placement_report().rebalances, 0);
        // Epoch 1 observes both shards; the boundary rebalance must pull
        // (nearly) everything onto the 200×-faster shard 0.
        for i in 0..store.num_batches() {
            store.visit(i, &mut |_, _| {});
        }
        store.end_epoch();
        let rep = store.placement_report();
        assert_eq!(rep.policy, ShardPlacement::Adaptive);
        assert_eq!(rep.rebalances, 1);
        assert!(rep.migrated_batches >= 1, "{rep:?}");
        assert!(rep.migrated_bytes >= 1, "{rep:?}");
        assert!(rep.shard_ewma_mbps[0] > rep.shard_ewma_mbps[1], "{rep:?}");
        assert!(rep.shard_bytes[0] > rep.shard_bytes[1], "{rep:?}");
        assert_eq!(
            rep.shard_bytes.iter().sum::<u64>(),
            store.spilled_bytes() as u64
        );
        // Migration never changes a byte: every batch still decodes to
        // exactly its source rows.
        for i in 0..store.num_batches() {
            store.visit(i, &mut |b, labels| {
                assert_eq!(b.decode(), x.slice_rows(i * 100, (i + 1) * 100));
                assert_eq!(labels, &y[i * 100..(i + 1) * 100]);
            });
        }
        // A second epoch over the settled layout stays settled (the plan
        // is deterministic and the hysteresis kills noise moves).
        store.end_epoch();
        let again = store.placement_report();
        assert_eq!(again.migrated_batches, rep.migrated_batches);
    }

    #[test]
    fn non_adaptive_placements_never_rebalance_on_end_epoch() {
        let (x, y) = dataset();
        for placement in [ShardPlacement::Stripe, ShardPlacement::Pack] {
            let config = StoreConfig::new(Scheme::Toc, 100, 0)
                .with_shards(2)
                .with_placement(placement)
                .with_shard_mbps(vec![2000.0, 10.0]);
            let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
            for i in 0..store.num_batches() {
                store.visit(i, &mut |_, _| {});
            }
            store.end_epoch();
            let rep = store.placement_report();
            assert_eq!(rep.rebalances, 0, "{placement}");
            assert_eq!(rep.migrated_batches, 0, "{placement}");
        }
    }

    #[test]
    fn invalid_pin_maps_fail_store_build() {
        let (x, y) = dataset();
        // Wrong length (2 shards, 1 entry) and out-of-range thread index.
        for pinning in [Pinning::Fixed(vec![0]), Pinning::Fixed(vec![0, 7])] {
            let config = StoreConfig::new(Scheme::Toc, 100, 0)
                .with_shards(2)
                .with_prefetch(2)
                .with_io(IoEngineKind::Ring)
                .with_scheduler(SchedulerConfig {
                    io_threads: 2,
                    decode_workers: 2,
                    pinning: pinning.clone(),
                });
            let err = match ShardedSpillStore::build(&x, &y, &config) {
                Err(e) => e,
                Ok(_) => panic!("pin map {pinning:?} must fail the build"),
            };
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{pinning:?}");
        }
        // A valid map builds and serves batches through the pinned ring.
        let config = StoreConfig::new(Scheme::Toc, 100, 0)
            .with_shards(2)
            .with_prefetch(2)
            .with_io(IoEngineKind::Ring)
            .with_scheduler(SchedulerConfig {
                io_threads: 2,
                decode_workers: 2,
                pinning: Pinning::Fixed(vec![1, 0]),
            });
        let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
        for i in 0..store.num_batches() {
            store.visit(i, &mut |b, _| {
                assert_eq!(b.decode(), x.slice_rows(i * 100, (i + 1) * 100));
            });
        }
        let rep = store.placement_report();
        assert_eq!(rep.pinning, Pinning::Fixed(vec![1, 0]));
        assert_eq!(rep.io_threads, 2);
        assert_eq!(rep.decode_workers, 2);
        store.stats().snapshot_stable().assert_consistent();
    }
}
