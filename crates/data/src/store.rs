//! Memory-budgeted mini-batch stores with real disk spill.
//!
//! Reproduces the system regime behind the paper's end-to-end results
//! (Figure 1A/D, §5.3): encoded mini-batches live in memory until a
//! configurable budget is exhausted; the remainder spills to disk and is
//! re-read (real file IO + deserialization) on every visit. Whether a
//! format's batches fit in the budget is exactly what separates TOC from
//! the baselines on the large-scale runs.
//!
//! Two providers implement the regime:
//!
//! * [`MiniBatchStore`] — single spill file. The read path is positional
//!   ([`SpillFile`]): concurrent visitors never serialize on a shared
//!   file cursor.
//! * [`ShardedSpillStore`] — stripes spilled batches across N shard files
//!   ([`StoreConfig::with_shards`]), reads them lock-free, and optionally
//!   runs a background prefetch pipeline ([`StoreConfig::with_prefetch`])
//!   that decodes upcoming batches on worker threads while the trainer
//!   computes on the current one, so an epoch over a spilled store
//!   approaches in-memory speed when compute dominates.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use toc_formats::{AnyBatch, ExecScratch, MatrixBatch, Scheme};
use toc_linalg::DenseMatrix;
use toc_ml::mgd::BatchProvider;

/// Store configuration.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Encoding scheme for all batches.
    pub scheme: Scheme,
    /// Rows per mini-batch (the paper uses 250 for the end-to-end runs).
    pub batch_rows: usize,
    /// Bytes of encoded batches kept in memory; anything beyond spills.
    pub memory_budget: usize,
    /// Spill directory; defaults to a fresh directory under the OS temp dir.
    pub spill_dir: Option<PathBuf>,
    /// Simulated disk read bandwidth in MB/s. The paper's end-to-end runs
    /// read spilled batches from cloud block storage; on a dev box the OS
    /// page cache makes re-reads nearly free, which would hide the IO wall
    /// the experiments measure. Each spill file (shard) models an
    /// independent device: a read of `len` bytes reserves a
    /// `len / mbps` interval on that device's timeline and sleeps until
    /// the reservation completes, so concurrent readers of one shard
    /// share its bandwidth while readers of different shards proceed in
    /// parallel. `None` performs raw IO only.
    pub disk_mbps: Option<f64>,
    /// Number of shard files for [`ShardedSpillStore`]; `0` means one
    /// shard per available hardware thread.
    pub shards: usize,
    /// Prefetch pipeline depth for [`ShardedSpillStore`]: how many
    /// upcoming spilled batches background workers keep decoded ahead of
    /// the visitors. `0` disables prefetch.
    pub prefetch: usize,
    /// Per-scheme encoding knobs (CLA planner choice and sample size).
    pub encode: toc_formats::EncodeOptions,
}

impl StoreConfig {
    pub fn new(scheme: Scheme, batch_rows: usize, memory_budget: usize) -> Self {
        Self {
            scheme,
            batch_rows,
            memory_budget,
            spill_dir: None,
            disk_mbps: None,
            shards: 0,
            prefetch: 0,
            encode: toc_formats::EncodeOptions::default(),
        }
    }

    /// Builder-style encoding-options override.
    pub fn with_encode_options(mut self, encode: toc_formats::EncodeOptions) -> Self {
        self.encode = encode;
        self
    }

    /// Builder-style bandwidth override. `mbps` must be finite and
    /// positive: zero would model an infinitely slow disk (the first
    /// spilled read would sleep forever) and negative rates are
    /// meaningless, so both are rejected eagerly here rather than hanging
    /// a training run later.
    pub fn with_disk_mbps(mut self, mbps: f64) -> Self {
        assert!(
            mbps.is_finite() && mbps > 0.0,
            "disk_mbps must be finite and > 0, got {mbps}"
        );
        self.disk_mbps = Some(mbps);
        self
    }

    /// Builder-style shard-count override (`0` = available parallelism).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Builder-style prefetch-depth override (`0` = no prefetch).
    pub fn with_prefetch(mut self, depth: usize) -> Self {
        self.prefetch = depth;
        self
    }

    /// Builder-style spill-directory override.
    pub fn with_spill_dir(mut self, dir: PathBuf) -> Self {
        self.spill_dir = Some(dir);
        self
    }

    fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }
}

/// Cumulative IO statistics (updated on every spilled visit).
#[derive(Debug, Default)]
pub struct IoStats {
    /// Spilled-batch reads performed (prefetched or synchronous).
    pub disk_reads: AtomicU64,
    /// Bytes read from spill files.
    pub bytes_read: AtomicU64,
    /// Spilled visits served by the prefetch pipeline (the batch was
    /// already decoded, or its read was in flight and overlapped compute).
    pub prefetch_hits: AtomicU64,
    /// Spilled visits that found no prefetch slot and read synchronously.
    pub prefetch_misses: AtomicU64,
    /// Simulated bandwidth delay accounted against the shard clocks, in
    /// nanoseconds (see [`StoreConfig::disk_mbps`]).
    pub throttle_ns: AtomicU64,
}

impl IoStats {
    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            disk_reads: self.disk_reads.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            prefetch_hits: self.prefetch_hits.load(Ordering::Relaxed),
            prefetch_misses: self.prefetch_misses.load(Ordering::Relaxed),
            throttle_ns: self.throttle_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`IoStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    pub disk_reads: u64,
    pub bytes_read: u64,
    pub prefetch_hits: u64,
    pub prefetch_misses: u64,
    pub throttle_ns: u64,
}

/// Recover a poisoned guard: a panicking reader never leaves the plain
/// buffers and maps behind these locks in an invalid state.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

/// A spill file readable at arbitrary offsets by any number of threads.
///
/// On unix the read path is positional (`pread` via
/// `std::os::unix::fs::FileExt::read_exact_at`): no seek, no lock, no
/// shared cursor. Elsewhere a portable fallback serializes seek+read
/// pairs behind a mutex.
#[derive(Debug)]
struct SpillFile {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: Mutex<File>,
}

impl SpillFile {
    fn new(file: File) -> Self {
        #[cfg(unix)]
        {
            Self { file }
        }
        #[cfg(not(unix))]
        {
            Self {
                file: Mutex::new(file),
            }
        }
    }

    /// Read exactly `buf.len()` bytes at `offset`.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = lock(&self.file);
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(buf)
        }
    }
}

/// Simulated-bandwidth clock for one spill device (shard). Readers reserve
/// an interval on the device timeline and sleep until their reservation
/// completes, so concurrent readers of one device share its bandwidth
/// (the aggregate never exceeds `mbps`) while readers of other devices
/// are unaffected. The delay is accounted per-shard with no lock held.
#[derive(Debug, Default)]
struct BandwidthClock {
    /// Device busy-until, in nanoseconds since the store's epoch.
    busy_until_ns: AtomicU64,
}

impl BandwidthClock {
    fn charge(&self, epoch: Instant, len: usize, mbps: f64, stats: &IoStats) {
        let delay_ns = (len as f64 / (mbps * 1e6) * 1e9) as u64;
        let now = epoch.elapsed().as_nanos() as u64;
        let mut cur = self.busy_until_ns.load(Ordering::Relaxed);
        let deadline = loop {
            let deadline = cur.max(now) + delay_ns;
            match self.busy_until_ns.compare_exchange_weak(
                cur,
                deadline,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break deadline,
                Err(seen) => cur = seen,
            }
        };
        stats.throttle_ns.fetch_add(delay_ns, Ordering::Relaxed);
        if deadline > now {
            std::thread::sleep(Duration::from_nanos(deadline - now));
        }
    }
}

/// One spill device: a positional-read file plus its bandwidth clock.
/// Both stores read spilled batches exclusively through
/// [`SpillDevice::read_batch`], so the throttle model and the `IoStats`
/// accounting can never drift apart between them.
struct SpillDevice {
    file: SpillFile,
    clock: BandwidthClock,
}

impl SpillDevice {
    fn new(file: File) -> Self {
        Self {
            file: SpillFile::new(file),
            clock: BandwidthClock::default(),
        }
    }

    /// Read and parse one spilled batch: positional read into `buf` (the
    /// caller's reusable staging slot), bandwidth charge, stats
    /// accounting, deserialize. Takes no lock (see [`SpillFile`]).
    fn read_batch(
        &self,
        offset: u64,
        len: usize,
        disk_mbps: Option<f64>,
        epoch: Instant,
        stats: &IoStats,
        buf: &mut Vec<u8>,
    ) -> AnyBatch {
        buf.clear();
        buf.resize(len, 0);
        self.file
            .read_exact_at(buf, offset)
            .expect("read spill file");
        if let Some(mbps) = disk_mbps {
            self.clock.charge(epoch, len, mbps, stats);
        }
        stats.disk_reads.fetch_add(1, Ordering::Relaxed);
        stats.bytes_read.fetch_add(len as u64, Ordering::Relaxed);
        Scheme::from_bytes(buf).expect("spill data corrupted")
    }
}

static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread staging for synchronous spilled reads. Prefetch workers
    /// own an [`ExecScratch`] slot; every other reader (plain visits,
    /// prefetch misses) reuses this buffer, so the hot read path performs
    /// no per-read heap allocation on any thread.
    static SYNC_SPILL_BUF: std::cell::RefCell<Vec<u8>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Pick the spill directory: the configured one, or a fresh per-store
/// directory under the OS temp dir (returned as owned for cleanup).
fn resolve_spill_dir(config: &StoreConfig) -> (PathBuf, Option<PathBuf>) {
    match &config.spill_dir {
        Some(d) => (d.clone(), None),
        None => {
            let d = std::env::temp_dir().join(format!(
                "toc-store-{}-{}",
                std::process::id(),
                NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed),
            ));
            (d.clone(), Some(d))
        }
    }
}

/// First pass shared by both stores: encode every batch and decide memory
/// vs. disk, preserving the original batch order (shuffle-once semantics).
enum Pending {
    Mem(AnyBatch),
    Disk(Vec<u8>),
}

#[allow(clippy::type_complexity)]
fn encode_batches(
    x: &DenseMatrix,
    labels: &[f64],
    config: &StoreConfig,
) -> (Vec<(Pending, Vec<f64>)>, usize, bool) {
    assert_eq!(x.rows(), labels.len());
    let mut pending: Vec<(Pending, Vec<f64>)> = Vec::new();
    let mut memory_bytes = 0usize;
    let mut any_spilled = false;
    let mut start = 0usize;
    while start < x.rows() {
        let end = (start + config.batch_rows).min(x.rows());
        let dense = x.slice_rows(start, end);
        let batch = config.scheme.encode_with(&dense, &config.encode);
        let y = labels[start..end].to_vec();
        let size = batch.size_bytes();
        if memory_bytes + size <= config.memory_budget {
            memory_bytes += size;
            pending.push((Pending::Mem(batch), y));
        } else {
            any_spilled = true;
            pending.push((Pending::Disk(batch.to_bytes()), y));
        }
        start = end;
    }
    (pending, memory_bytes, any_spilled)
}

// ---------------------------------------------------------------------------
// MiniBatchStore: the single-file store.

enum Location {
    Memory(AnyBatch),
    Disk { offset: u64, len: usize },
}

/// The single-file out-of-core mini-batch store. Implements
/// [`toc_ml::mgd::BatchProvider`], so it plugs directly into the trainer.
/// The read path is positional: concurrent visitors never contend on a
/// file cursor or lock (unix; see [`SpillFile`]).
pub struct MiniBatchStore {
    scheme: Scheme,
    features: usize,
    entries: Vec<(Location, Vec<f64>)>,
    spill_file: Option<SpillDevice>,
    spill_path: Option<PathBuf>,
    owns_dir: Option<PathBuf>,
    memory_bytes: usize,
    spilled_bytes: usize,
    disk_mbps: Option<f64>,
    epoch: Instant,
    pub stats: IoStats,
}

impl MiniBatchStore {
    /// Encode `x` into mini-batches under `config`, spilling past the
    /// memory budget. `labels` follow the `toc-ml` convention.
    pub fn build(x: &DenseMatrix, labels: &[f64], config: &StoreConfig) -> std::io::Result<Self> {
        let (pending, memory_bytes, any_spilled) = encode_batches(x, labels, config);

        // Second pass: lay spilled batches out in the spill file, keeping
        // entry order aligned with batch order.
        let mut entries = Vec::with_capacity(pending.len());
        let (spill_file, spill_path, owns_dir, spilled_bytes) = if !any_spilled {
            for (p, y) in pending {
                match p {
                    Pending::Mem(b) => entries.push((Location::Memory(b), y)),
                    Pending::Disk(_) => unreachable!(),
                }
            }
            (None, None, None, 0)
        } else {
            let (dir, owns) = resolve_spill_dir(config);
            fs::create_dir_all(&dir)?;
            // Per-store id in the name: two stores sharing an explicit
            // spill_dir (and scheme) must not truncate or unlink each
            // other's live spill file.
            let path = dir.join(format!(
                "spill-{}-{}.bin",
                config.scheme.tag(),
                NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed),
            ));
            let mut f = OpenOptions::new()
                .create(true)
                .write(true)
                .read(true)
                .truncate(true)
                .open(&path)?;
            let mut offset = 0u64;
            let mut total = 0usize;
            for (p, y) in pending {
                match p {
                    Pending::Mem(b) => entries.push((Location::Memory(b), y)),
                    Pending::Disk(bytes) => {
                        f.write_all(&bytes)?;
                        entries.push((
                            Location::Disk {
                                offset,
                                len: bytes.len(),
                            },
                            y,
                        ));
                        offset += bytes.len() as u64;
                        total += bytes.len();
                    }
                }
            }
            f.sync_all()?;
            (Some(SpillDevice::new(f)), Some(path), owns, total)
        };

        Ok(Self {
            scheme: config.scheme,
            features: x.cols(),
            entries,
            spill_file,
            spill_path,
            owns_dir,
            memory_bytes,
            spilled_bytes,
            disk_mbps: config.disk_mbps,
            epoch: Instant::now(),
            stats: IoStats::default(),
        })
    }

    /// Number of batches kept in memory.
    pub fn in_memory_batches(&self) -> usize {
        self.entries
            .iter()
            .filter(|(l, _)| matches!(l, Location::Memory(_)))
            .count()
    }

    /// Number of batches on disk.
    pub fn spilled_batches(&self) -> usize {
        self.entries.len() - self.in_memory_batches()
    }

    /// Bytes of encoded batches resident in memory.
    pub fn memory_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// Bytes of encoded batches on disk.
    pub fn spilled_bytes(&self) -> usize {
        self.spilled_bytes
    }

    /// Total encoded footprint.
    pub fn total_bytes(&self) -> usize {
        self.memory_bytes + self.spilled_bytes
    }

    /// The scheme this store encodes with.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    fn read_disk(&self, offset: u64, len: usize) -> AnyBatch {
        let dev = self
            .spill_file
            .as_ref()
            .expect("disk entry without spill file");
        SYNC_SPILL_BUF.with(|cell| {
            dev.read_batch(
                offset,
                len,
                self.disk_mbps,
                self.epoch,
                &self.stats,
                &mut cell.borrow_mut(),
            )
        })
    }
}

impl BatchProvider for MiniBatchStore {
    fn num_batches(&self) -> usize {
        self.entries.len()
    }

    fn num_features(&self) -> usize {
        self.features
    }

    fn visit(&self, idx: usize, f: &mut dyn FnMut(&AnyBatch, &[f64])) {
        let (loc, labels) = &self.entries[idx];
        match loc {
            Location::Memory(b) => f(b, labels),
            Location::Disk { offset, len } => {
                let b = self.read_disk(*offset, *len);
                f(&b, labels);
            }
        }
    }
}

impl Drop for MiniBatchStore {
    fn drop(&mut self) {
        // Best-effort cleanup of the spill artifacts we created.
        self.spill_file = None;
        if let Some(p) = &self.spill_path {
            let _ = fs::remove_file(p);
        }
        if let Some(d) = &self.owns_dir {
            let _ = fs::remove_dir(d);
        }
    }
}

// ---------------------------------------------------------------------------
// ShardedSpillStore: striped shard files + background prefetch pipeline.

/// Where a spilled batch lives.
#[derive(Clone, Copy, Debug)]
struct DiskLoc {
    shard: usize,
    offset: u64,
    len: usize,
}

enum Slot {
    Memory(AnyBatch),
    Disk(DiskLoc),
}

struct Shard {
    dev: SpillDevice,
    path: PathBuf,
    bytes: u64,
}

/// State shared between the store handle and the prefetch workers.
struct Inner {
    scheme: Scheme,
    features: usize,
    entries: Vec<(Slot, Vec<f64>)>,
    /// Indices of the disk-resident entries, ascending — the cyclic orbit
    /// the prefetch lookahead walks (a store can hold arbitrarily many
    /// in-memory batches between spilled ones; scanning `entries` for the
    /// next spilled index under the prefetch lock would be O(n)).
    spilled_order: Vec<usize>,
    shards: Vec<Shard>,
    disk_mbps: Option<f64>,
    epoch: Instant,
    stats: IoStats,
}

impl Inner {
    fn disk_loc(&self, idx: usize) -> Option<DiskLoc> {
        match &self.entries[idx].0 {
            Slot::Disk(loc) => Some(*loc),
            Slot::Memory(_) => None,
        }
    }

    /// Read and parse one spilled batch into the caller's reusable
    /// staging slot.
    fn read_disk(&self, loc: DiskLoc, buf: &mut Vec<u8>) -> AnyBatch {
        self.shards[loc.shard].dev.read_batch(
            loc.offset,
            loc.len,
            self.disk_mbps,
            self.epoch,
            &self.stats,
            buf,
        )
    }

    /// [`Self::read_disk`] staged through the visitor thread's reusable
    /// buffer (plain visits and prefetch misses).
    fn read_disk_sync(&self, loc: DiskLoc) -> AnyBatch {
        SYNC_SPILL_BUF.with(|cell| self.read_disk(loc, &mut cell.borrow_mut()))
    }
}

#[derive(Default)]
struct PrefetchState {
    /// Indices scheduled but not yet picked up by a worker.
    queue: VecDeque<usize>,
    /// Indices a worker is currently reading.
    pending: HashSet<usize>,
    /// Decoded batches awaiting their visitor.
    ready: HashMap<usize, AnyBatch>,
    shutdown: bool,
}

struct PrefetchShared {
    state: Mutex<PrefetchState>,
    /// Wakes workers: new work queued, backpressure released, shutdown.
    work: Condvar,
    /// Wakes visitors blocked on an in-flight slot.
    done: Condvar,
}

/// Background decode pipeline: worker threads pull scheduled indices,
/// read them from the shards (positional IO, per-shard throttle) into
/// reusable [`ExecScratch`]-backed slots, and park the decoded batches for
/// the visitors. Backpressure caps decoded-but-unconsumed slots at
/// `2 × depth`.
struct Prefetcher {
    shared: Arc<PrefetchShared>,
    depth: usize,
    workers: Vec<JoinHandle<()>>,
}

const MAX_PREFETCH_WORKERS: usize = 8;

impl Prefetcher {
    fn start(inner: Arc<Inner>, depth: usize) -> Self {
        let shared = Arc::new(PrefetchShared {
            state: Mutex::new(PrefetchState::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        // Seed the pipeline with the first spilled indices so the very
        // first epoch already overlaps IO with compute.
        {
            let mut st = lock(&shared.state);
            st.queue
                .extend(inner.spilled_order.iter().take(depth).copied());
        }
        let threads = depth.clamp(1, MAX_PREFETCH_WORKERS);
        let workers = (0..threads)
            .map(|_| {
                let inner = Arc::clone(&inner);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&inner, &shared, depth))
            })
            .collect();
        Self {
            shared,
            depth,
            workers,
        }
    }

    fn worker_loop(inner: &Inner, shared: &PrefetchShared, depth: usize) {
        // The reusable slot: IO staging lives in the worker's scratch and
        // persists across prefetches, so steady-state prefetching
        // allocates only the decoded batch itself.
        let mut scratch = ExecScratch::default();
        loop {
            let idx = {
                let mut st = lock(&shared.state);
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.ready.len() < 2 * depth {
                        if let Some(i) = st.queue.pop_front() {
                            st.pending.insert(i);
                            break i;
                        }
                    }
                    st = wait(&shared.work, st);
                }
            };
            let loc = inner.disk_loc(idx).expect("prefetch of in-memory batch");
            // Contain read/parse panics (truncated shard, corrupt bytes):
            // the index must leave `pending` either way, or a visitor
            // waiting on it would hang forever. On failure the index is
            // simply no longer tracked — the visitor falls through to the
            // synchronous path and surfaces the underlying error itself.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                inner.read_disk(loc, &mut scratch.spill_bytes)
            }));
            let mut st = lock(&shared.state);
            st.pending.remove(&idx);
            if let Ok(batch) = result {
                st.ready.insert(idx, batch);
            }
            drop(st);
            shared.done.notify_all();
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.work.notify_all();
        self.shared.done.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Sharded, concurrent out-of-core store: spilled batches are striped
/// round-robin across N shard files, the read path is lock-free
/// positional IO, and an optional prefetch pipeline decodes upcoming
/// batches in the background. Implements [`BatchProvider`].
pub struct ShardedSpillStore {
    inner: Arc<Inner>,
    prefetcher: Option<Prefetcher>,
    owns_dir: Option<PathBuf>,
    memory_bytes: usize,
    spilled_bytes: usize,
}

impl ShardedSpillStore {
    /// Encode `x` into mini-batches under `config`, striping everything
    /// past the memory budget across `config.shards` shard files.
    pub fn build(x: &DenseMatrix, labels: &[f64], config: &StoreConfig) -> std::io::Result<Self> {
        let (pending, memory_bytes, any_spilled) = encode_batches(x, labels, config);
        let spilled_count = pending
            .iter()
            .filter(|(p, _)| matches!(p, Pending::Disk(_)))
            .count();

        let mut entries = Vec::with_capacity(pending.len());
        let (shards, owns_dir, spilled_bytes) = if !any_spilled {
            for (p, y) in pending {
                match p {
                    Pending::Mem(b) => entries.push((Slot::Memory(b), y)),
                    Pending::Disk(_) => unreachable!(),
                }
            }
            (Vec::new(), None, 0)
        } else {
            let (dir, owns) = resolve_spill_dir(config);
            fs::create_dir_all(&dir)?;
            let n_shards = config.resolved_shards().clamp(1, spilled_count);
            let store_id = NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed);
            let mut files = Vec::with_capacity(n_shards);
            let mut paths = Vec::with_capacity(n_shards);
            for s in 0..n_shards {
                let path = dir.join(format!(
                    "spill-{}-{}-s{}.bin",
                    config.scheme.tag(),
                    store_id,
                    s
                ));
                files.push(
                    OpenOptions::new()
                        .create(true)
                        .write(true)
                        .read(true)
                        .truncate(true)
                        .open(&path)?,
                );
                paths.push(path);
            }
            let mut offsets = vec![0u64; n_shards];
            let mut next_shard = 0usize;
            let mut total = 0usize;
            for (p, y) in pending {
                match p {
                    Pending::Mem(b) => entries.push((Slot::Memory(b), y)),
                    Pending::Disk(bytes) => {
                        let s = next_shard;
                        next_shard = (next_shard + 1) % n_shards;
                        files[s].write_all(&bytes)?;
                        entries.push((
                            Slot::Disk(DiskLoc {
                                shard: s,
                                offset: offsets[s],
                                len: bytes.len(),
                            }),
                            y,
                        ));
                        offsets[s] += bytes.len() as u64;
                        total += bytes.len();
                    }
                }
            }
            let shards: Vec<Shard> = files
                .into_iter()
                .zip(paths)
                .zip(&offsets)
                .map(|((f, path), &bytes)| {
                    f.sync_all().map(|_| Shard {
                        dev: SpillDevice::new(f),
                        path,
                        bytes,
                    })
                })
                .collect::<std::io::Result<_>>()?;
            (shards, owns, total)
        };

        let spilled_order: Vec<usize> = entries
            .iter()
            .enumerate()
            .filter_map(|(i, (s, _))| matches!(s, Slot::Disk(_)).then_some(i))
            .collect();
        let inner = Arc::new(Inner {
            scheme: config.scheme,
            features: x.cols(),
            entries,
            spilled_order,
            shards,
            disk_mbps: config.disk_mbps,
            epoch: Instant::now(),
            stats: IoStats::default(),
        });
        let prefetcher = if config.prefetch > 0 && spilled_count > 0 {
            Some(Prefetcher::start(Arc::clone(&inner), config.prefetch))
        } else {
            None
        };
        Ok(Self {
            inner,
            prefetcher,
            owns_dir,
            memory_bytes,
            spilled_bytes,
        })
    }

    /// Number of batches kept in memory.
    pub fn in_memory_batches(&self) -> usize {
        self.inner
            .entries
            .iter()
            .filter(|(s, _)| matches!(s, Slot::Memory(_)))
            .count()
    }

    /// Number of batches on disk.
    pub fn spilled_batches(&self) -> usize {
        self.inner.entries.len() - self.in_memory_batches()
    }

    /// Number of shard files backing the spill.
    pub fn num_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Bytes spilled to each shard.
    pub fn shard_bytes(&self) -> Vec<u64> {
        self.inner.shards.iter().map(|s| s.bytes).collect()
    }

    /// Bytes of encoded batches resident in memory.
    pub fn memory_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// Bytes of encoded batches on disk.
    pub fn spilled_bytes(&self) -> usize {
        self.spilled_bytes
    }

    /// Total encoded footprint.
    pub fn total_bytes(&self) -> usize {
        self.memory_bytes + self.spilled_bytes
    }

    /// The scheme this store encodes with.
    pub fn scheme(&self) -> Scheme {
        self.inner.scheme
    }

    /// Cumulative IO statistics.
    pub fn stats(&self) -> &IoStats {
        &self.inner.stats
    }

    /// Whether the prefetch pipeline is active.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetcher.is_some()
    }

    /// Schedule the next spilled indices after `idx` (cyclically, so the
    /// pipeline stays warm across epoch boundaries) that are not already
    /// queued, in flight, or decoded. The walk runs over
    /// `Inner::spilled_order`, never the full entry table, and the queue
    /// is capped at `depth`: visits consume one slot each, so an uncapped
    /// queue would grow until every spilled index sat in it and the
    /// `queue.contains` membership scan became O(n) under the shared
    /// lock. The cap keeps that scan O(depth).
    fn schedule_lookahead(&self, st: &mut PrefetchState, idx: usize, depth: usize) {
        let order = &self.inner.spilled_order;
        let start = order.partition_point(|&i| i <= idx);
        for k in 0..order.len() {
            if st.queue.len() >= depth {
                break;
            }
            let i = order[(start + k) % order.len()];
            if !st.pending.contains(&i) && !st.ready.contains_key(&i) && !st.queue.contains(&i) {
                st.queue.push_back(i);
            }
        }
    }

    /// Materialize the spilled batch `idx`, through the prefetch pipeline
    /// when one is running.
    fn fetch(&self, idx: usize, loc: DiskLoc) -> AnyBatch {
        let Some(pf) = &self.prefetcher else {
            return self.inner.read_disk_sync(loc);
        };
        let mut st = lock(&pf.shared.state);
        // Schedule the lookahead window first so workers overlap the next
        // batches with whatever this visit does.
        self.schedule_lookahead(&mut st, idx, pf.depth);
        pf.shared.work.notify_all();
        loop {
            if let Some(b) = st.ready.remove(&idx) {
                drop(st);
                self.inner
                    .stats
                    .prefetch_hits
                    .fetch_add(1, Ordering::Relaxed);
                // A decoded slot was released: let backpressured workers run.
                pf.shared.work.notify_all();
                return b;
            }
            if st.pending.contains(&idx) {
                // In flight: the IO overlaps our wait, still a hit.
                st = wait(&pf.shared.done, st);
                continue;
            }
            // Not scheduled (or still queued): claim it and read inline.
            if let Some(pos) = st.queue.iter().position(|&q| q == idx) {
                st.queue.remove(pos);
            }
            drop(st);
            self.inner
                .stats
                .prefetch_misses
                .fetch_add(1, Ordering::Relaxed);
            return self.inner.read_disk_sync(loc);
        }
    }
}

impl BatchProvider for ShardedSpillStore {
    fn num_batches(&self) -> usize {
        self.inner.entries.len()
    }

    fn num_features(&self) -> usize {
        self.inner.features
    }

    fn visit(&self, idx: usize, f: &mut dyn FnMut(&AnyBatch, &[f64])) {
        let (slot, labels) = &self.inner.entries[idx];
        match slot {
            Slot::Memory(b) => f(b, labels),
            Slot::Disk(loc) => {
                let b = self.fetch(idx, *loc);
                f(&b, labels);
            }
        }
    }
}

impl Drop for ShardedSpillStore {
    fn drop(&mut self) {
        // Stop the workers before unlinking their files.
        self.prefetcher = None;
        for shard in &self.inner.shards {
            let _ = fs::remove_file(&shard.path);
        }
        if let Some(d) = &self.owns_dir {
            let _ = fs::remove_dir(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_preset, DatasetPreset};

    fn dataset() -> (DenseMatrix, Vec<f64>) {
        let ds = generate_preset(DatasetPreset::CensusLike, 600, 21);
        (ds.x, ds.labels)
    }

    #[test]
    fn everything_fits_with_big_budget() {
        let (x, y) = dataset();
        let store =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Toc, 100, usize::MAX)).unwrap();
        assert_eq!(store.num_batches(), 6);
        assert_eq!(store.spilled_batches(), 0);
        assert_eq!(store.stats.disk_reads.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn zero_budget_spills_everything_and_roundtrips() {
        let (x, y) = dataset();
        for scheme in [Scheme::Toc, Scheme::Den, Scheme::Gzip, Scheme::Cla] {
            let store = MiniBatchStore::build(&x, &y, &StoreConfig::new(scheme, 150, 0)).unwrap();
            assert_eq!(store.spilled_batches(), 4, "{}", scheme.name());
            // Visiting a spilled batch does real IO and returns the exact
            // batch content.
            store.visit(2, &mut |b, labels| {
                assert_eq!(b.decode(), x.slice_rows(300, 450));
                assert_eq!(labels, &y[300..450]);
            });
            assert!(store.stats.disk_reads.load(Ordering::Relaxed) >= 1);
        }
    }

    #[test]
    fn partial_budget_splits_memory_and_disk() {
        let (x, y) = dataset();
        let probe =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Csr, 100, usize::MAX)).unwrap();
        let half = probe.memory_bytes() / 2;
        let store =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Csr, 100, half)).unwrap();
        assert!(store.in_memory_batches() >= 1);
        assert!(store.spilled_batches() >= 1);
        assert_eq!(store.in_memory_batches() + store.spilled_batches(), 6);
        // All batches still decode correctly.
        for i in 0..store.num_batches() {
            store.visit(i, &mut |b, _| {
                assert_eq!(b.decode(), x.slice_rows(i * 100, (i + 1) * 100));
            });
        }
    }

    #[test]
    fn toc_fits_where_den_spills() {
        // The crux of Table 6: pick a budget between the TOC footprint and
        // the DEN footprint.
        let (x, y) = dataset();
        let toc_total =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Toc, 250, usize::MAX))
                .unwrap()
                .total_bytes();
        let budget = toc_total * 2;
        let toc =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Toc, 250, budget)).unwrap();
        let den =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Den, 250, budget)).unwrap();
        assert_eq!(toc.spilled_batches(), 0);
        assert!(den.spilled_batches() > 0);
    }

    #[test]
    fn trainer_runs_over_spilled_store() {
        use toc_ml::mgd::{MgdConfig, ModelSpec, Trainer};
        use toc_ml::LossKind;
        let (x, y) = dataset();
        let store = MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Toc, 100, 0)).unwrap();
        let trainer = Trainer::new(MgdConfig {
            epochs: 8,
            lr: 0.3,
            ..Default::default()
        });
        let mut report = trainer.train(&ModelSpec::Linear(LossKind::Logistic), &store, None);
        let eval = Scheme::Den.encode(&x);
        let err = report.model.error_rate(&eval, &y);
        assert!(err < 0.25, "error {err}");
        assert!(store.stats.disk_reads.load(Ordering::Relaxed) >= 8 * 6);
    }

    #[test]
    fn spill_file_removed_on_drop() {
        let (x, y) = dataset();
        let store = MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Den, 200, 0)).unwrap();
        let path = store.spill_path.clone().unwrap();
        assert!(path.exists());
        drop(store);
        assert!(!path.exists());
    }

    #[test]
    fn sharded_store_stripes_across_shard_files() {
        let (x, y) = dataset();
        let config = StoreConfig::new(Scheme::Toc, 100, 0).with_shards(3);
        let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
        assert_eq!(store.num_batches(), 6);
        assert_eq!(store.spilled_batches(), 6);
        assert_eq!(store.num_shards(), 3);
        // Round-robin striping: every shard holds some bytes.
        let per_shard = store.shard_bytes();
        assert_eq!(per_shard.len(), 3);
        assert!(per_shard.iter().all(|&b| b > 0), "{per_shard:?}");
        assert_eq!(per_shard.iter().sum::<u64>(), store.spilled_bytes() as u64);
        // Shard paths exist while the store lives and are removed on drop.
        let paths: Vec<PathBuf> = store.inner.shards.iter().map(|s| s.path.clone()).collect();
        assert!(paths.iter().all(|p| p.exists()));
        for i in 0..store.num_batches() {
            store.visit(i, &mut |b, labels| {
                assert_eq!(b.decode(), x.slice_rows(i * 100, (i + 1) * 100));
                assert_eq!(labels, &y[i * 100..(i + 1) * 100]);
            });
        }
        drop(store);
        assert!(paths.iter().all(|p| !p.exists()));
    }

    #[test]
    fn sharded_partial_budget_matches_flat_layout() {
        let (x, y) = dataset();
        let probe =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Csr, 100, usize::MAX)).unwrap();
        let budget = probe.memory_bytes() / 2;
        let config = StoreConfig::new(Scheme::Csr, 100, budget).with_shards(2);
        let flat =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Csr, 100, budget)).unwrap();
        let sharded = ShardedSpillStore::build(&x, &y, &config).unwrap();
        assert_eq!(flat.in_memory_batches(), sharded.in_memory_batches());
        assert_eq!(flat.spilled_batches(), sharded.spilled_batches());
        assert_eq!(flat.total_bytes(), sharded.total_bytes());
    }

    #[test]
    fn prefetch_pipeline_serves_decoded_batches() {
        let (x, y) = dataset();
        let config = StoreConfig::new(Scheme::Toc, 100, 0)
            .with_shards(2)
            .with_prefetch(3);
        let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
        assert!(store.prefetch_enabled());
        // Each visit keeps the lookahead window ahead of it scheduled
        // (whether the visit itself was a hit or a claimed miss). Before
        // visiting batches 1–3, wait — bounded, polling the pipeline
        // state rather than sleeping a fixed amount — until the workers
        // have decoded that batch; the visit must then be served from the
        // pipeline regardless of how threads were scheduled.
        store.visit(0, &mut |b, _| {
            assert_eq!(b.decode(), x.slice_rows(0, 100));
        });
        let before = store.stats().snapshot();
        let pf = store.prefetcher.as_ref().unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        for i in 1..=3 {
            loop {
                {
                    let st = lock(&pf.shared.state);
                    if st.ready.contains_key(&i) {
                        break;
                    }
                }
                assert!(
                    Instant::now() < deadline,
                    "prefetch workers stalled on batch {i}"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
            store.visit(i, &mut |b, _| {
                assert_eq!(b.decode(), x.slice_rows(i * 100, (i + 1) * 100));
            });
        }
        let after = store.stats().snapshot();
        assert_eq!(after.prefetch_hits - before.prefetch_hits, 3, "{after:?}");
        // Finish the sweep: every spilled visit is accounted as exactly
        // one hit or miss, and every visit consumed exactly one read; at
        // most a lookahead window of reads stays unconsumed.
        for i in 4..store.num_batches() {
            store.visit(i, &mut |b, _| {
                assert_eq!(b.decode(), x.slice_rows(i * 100, (i + 1) * 100));
            });
        }
        let s = store.stats().snapshot();
        let visits = store.num_batches() as u64;
        assert_eq!(s.prefetch_hits + s.prefetch_misses, visits);
        assert!(s.disk_reads >= visits);
        assert!(
            s.disk_reads <= visits + 2 * 3 + MAX_PREFETCH_WORKERS as u64,
            "{s:?}"
        );
    }

    #[test]
    fn bandwidth_throttle_accounts_per_shard() {
        let (x, y) = dataset();
        let mbps = 400.0;
        let config = StoreConfig::new(Scheme::Den, 150, 0)
            .with_shards(2)
            .with_disk_mbps(mbps);
        let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
        let t0 = Instant::now();
        for i in 0..store.num_batches() {
            store.visit(i, &mut |_, _| {});
        }
        let elapsed = t0.elapsed();
        let s = store.stats().snapshot();
        // The accounted delay is deterministic: sum of len/mbps per read.
        let expected: u64 = (0..store.num_batches())
            .map(|i| {
                let Slot::Disk(loc) = &store.inner.entries[i].0 else {
                    unreachable!()
                };
                (loc.len as f64 / (mbps * 1e6) * 1e9) as u64
            })
            .sum();
        assert_eq!(s.throttle_ns, expected);
        // A sequential sweep really slept for (at least) the simulated time
        // of the slowest shard.
        let slowest_shard_ns = store
            .shard_bytes()
            .iter()
            .map(|&b| (b as f64 / (mbps * 1e6) * 1e9) as u64)
            .max()
            .unwrap();
        assert!(elapsed >= Duration::from_nanos(slowest_shard_ns));
    }

    #[test]
    fn truncated_shard_fails_loudly_instead_of_hanging() {
        let (x, y) = dataset();
        let config = StoreConfig::new(Scheme::Den, 100, 0)
            .with_shards(2)
            .with_prefetch(2);
        let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
        // Truncate every shard behind the store's back. The prefetch seed
        // window only covers batches 0 and 1, so batch 4 is guaranteed to
        // be read after the truncation — by a worker (whose panic must be
        // contained and must not strand the index in `pending`) or by the
        // visitor's synchronous path. Either way the visit must surface
        // the IO failure instead of waiting forever.
        for shard in &store.inner.shards {
            OpenOptions::new()
                .write(true)
                .truncate(true)
                .open(&shard.path)
                .unwrap();
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.visit(4, &mut |_, _| {});
        }));
        assert!(result.is_err(), "visit over a truncated shard must fail");
    }

    #[test]
    fn in_memory_sharded_store_has_no_shards() {
        let (x, y) = dataset();
        let config = StoreConfig::new(Scheme::Toc, 100, usize::MAX)
            .with_shards(4)
            .with_prefetch(2);
        let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
        assert_eq!(store.num_shards(), 0);
        assert!(!store.prefetch_enabled());
        assert_eq!(store.spilled_batches(), 0);
        for i in 0..store.num_batches() {
            store.visit(i, &mut |b, _| {
                assert_eq!(b.decode(), x.slice_rows(i * 100, (i + 1) * 100));
            });
        }
        assert_eq!(store.stats().snapshot(), IoSnapshot::default());
    }
}
