//! Multi-tenant training service: N concurrent jobs over one
//! [`ShardedSpillStore`].
//!
//! The paper's premise is that one compressed representation should
//! serve many consumers without re-materializing data. This module is
//! that layer: a [`JobServer`] admits up to `max_concurrent` training
//! jobs at a time, every admitted job trains through its own
//! [`TenantProvider`] view of the shared store, and all tenants share
//! one [`BatchCache`] — a byte-budgeted pool of *encoded* batch bytes
//! with heat-based eviction.
//!
//! Heat reuses the signals the store already maintains: the per-batch
//! `visits` counters that drive adaptive placement, weighted by the
//! measured cost to re-read the batch from its current shard (the
//! per-shard bandwidth EWMAs). A batch every tenant keeps visiting on a
//! slow shard is the most valuable thing to keep resident.
//!
//! Caching encoded bytes (not decoded batches) keeps the pool dense —
//! that is the point of tuple-oriented compression — and makes
//! determinism structural: decode is deterministic, so a job sees
//! bit-identical batches whether a visit was served from the cache, from
//! its own direct read, or from a solo run's prefetch pipeline. The
//! determinism suite pins exactly that.
//!
//! Tenant reads bypass the prefetch pipeline: the shared cache plays the
//! lookahead's role across jobs, and each cache miss pays one direct
//! charged read (`cache_misses` in [`crate::IoSnapshot`] — see
//! `assert_consistent` for the coverage invariant). Before the read, the
//! tenant is throttled to its IO share: a job with QoS weight `share`
//! may issue reads on a shard at `share / mean_active_share` times the
//! shard's EWMA bandwidth. Under concurrency the EWMA converges to the
//! per-reader fair share, so equal-share tenants are steered, not
//! stalled, while a low-share tenant genuinely yields bandwidth to
//! high-share ones.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use toc_formats::AnyBatch;
use toc_ml::mgd::{BatchProvider, MgdConfig, ModelSpec, TrainedModel, Trainer};
use toc_ml::train_nn_parallel_report;

use crate::io::{lock, wait};
use crate::store::ShardedSpillStore;

// ---------------------------------------------------------------------------
// BatchCache: shared compressed-batch pool with heat-based eviction.

struct CacheEntry {
    bytes: Arc<Vec<u8>>,
    heat: f64,
}

struct CacheInner {
    map: HashMap<usize, CacheEntry>,
    bytes: usize,
}

/// Byte-budgeted pool of encoded spilled batches, keyed by spill id and
/// shared by every tenant of a store. Eviction is strictly by heat: an
/// insert evicts the coldest resident entries until it fits, and is
/// refused outright when the incoming batch is colder than everything it
/// would displace — the hottest batches survive, and the pool never
/// exceeds its budget.
pub struct BatchCache {
    budget: usize,
    inner: Mutex<CacheInner>,
    insertions: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
}

impl BatchCache {
    pub fn new(budget: usize) -> Self {
        Self {
            budget,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                bytes: 0,
            }),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// The byte budget the pool never exceeds.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Encoded bytes currently resident.
    pub fn bytes(&self) -> usize {
        lock(&self.inner).bytes
    }

    /// Number of resident batches.
    pub fn len(&self) -> usize {
        lock(&self.inner).map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether spill id `id` is resident.
    pub fn contains(&self, id: usize) -> bool {
        lock(&self.inner).map.contains_key(&id)
    }

    /// Successful inserts (not counting refreshes of resident entries).
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }

    /// Entries displaced to make room for hotter ones.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Inserts refused because the batch was colder than what it would
    /// displace (or larger than the whole budget).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Look up spill id `id`, refreshing its heat on a hit.
    pub fn get(&self, id: usize, heat: f64) -> Option<Arc<Vec<u8>>> {
        let mut st = lock(&self.inner);
        let e = st.map.get_mut(&id)?;
        e.heat = e.heat.max(heat);
        Some(Arc::clone(&e.bytes))
    }

    /// Offer encoded bytes for spill id `id` at the given heat. Returns
    /// whether the bytes are resident afterwards. The coldest entries are
    /// evicted to make room, but never ones hotter than the newcomer.
    pub fn insert(&self, id: usize, bytes: Vec<u8>, heat: f64) -> bool {
        let size = bytes.len();
        if size > self.budget {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut st = lock(&self.inner);
        if let Some(e) = st.map.get_mut(&id) {
            // Racing tenants missed the same batch; keep the resident copy
            // (the bytes are identical) and just refresh the heat.
            e.heat = e.heat.max(heat);
            return true;
        }
        while st.bytes + size > self.budget {
            // O(len) coldest scan per eviction: pool populations are small
            // (tens to hundreds of batches), and inserts already sit on a
            // charged disk read.
            let (&cold_id, cold_heat) = st
                .map
                .iter()
                .map(|(k, e)| (k, e.heat))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("over budget with an empty cache");
            if cold_heat > heat {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            let evicted = st.map.remove(&cold_id).unwrap();
            st.bytes -= evicted.bytes.len();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        st.bytes += size;
        st.map.insert(
            id,
            CacheEntry {
                bytes: Arc::new(bytes),
                heat,
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
        true
    }
}

// ---------------------------------------------------------------------------
// Admission control.

struct AdmissionState {
    running: usize,
    total_share: f64,
    peak: usize,
}

/// Caps how many jobs train at once and tracks the active QoS shares the
/// per-tenant throttle normalizes against. Admission is FIFO-ish (condvar
/// wakeup order); blocked jobs report the wait as `queue_wait`.
pub(crate) struct Admission {
    max: usize,
    st: Mutex<AdmissionState>,
    cv: Condvar,
}

impl Admission {
    fn new(max: usize) -> Self {
        Self {
            max,
            st: Mutex::new(AdmissionState {
                running: 0,
                total_share: 0.0,
                peak: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// A standalone group that always reports exactly one active job —
    /// what a directly-constructed [`TenantProvider`] normalizes against.
    fn solo(share: f64) -> Self {
        let a = Self::new(0);
        a.admit(share);
        a
    }

    fn admit(&self, share: f64) {
        let mut g = lock(&self.st);
        while self.max > 0 && g.running >= self.max {
            g = wait(&self.cv, g);
        }
        g.running += 1;
        g.total_share += share;
        g.peak = g.peak.max(g.running);
    }

    fn release(&self, share: f64) {
        let mut g = lock(&self.st);
        g.running -= 1;
        g.total_share -= share;
        drop(g);
        self.cv.notify_all();
    }

    fn active(&self) -> (usize, f64) {
        let g = lock(&self.st);
        (g.running, g.total_share)
    }

    fn peak(&self) -> usize {
        lock(&self.st).peak
    }
}

// ---------------------------------------------------------------------------
// TenantProvider: one job's view of the shared store.

/// One tenant's [`BatchProvider`] over a shared store: in-memory batches
/// are served directly; spilled visits bump the shared heat counters,
/// consult the shared [`BatchCache`], and on a miss pay one QoS-throttled
/// direct read whose bytes are offered back to the cache.
pub struct TenantProvider {
    store: Arc<ShardedSpillStore>,
    cache: Arc<BatchCache>,
    admission: Arc<Admission>,
    share: f64,
    epoch: Instant,
    /// Per-shard leaky-bucket clocks (seconds since `epoch` at which this
    /// tenant's next read on the shard may start).
    clocks: Vec<Mutex<f64>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    qos_wait_ns: AtomicU64,
    batches_visited: AtomicU64,
}

impl TenantProvider {
    /// A standalone tenant (its own admission group of one) — the shape
    /// the tests use; [`JobServer`] wires tenants into its shared group.
    pub fn new(store: Arc<ShardedSpillStore>, cache: Arc<BatchCache>, share: f64) -> Self {
        let admission = Arc::new(Admission::solo(share));
        Self::with_admission(store, cache, admission, share)
    }

    fn with_admission(
        store: Arc<ShardedSpillStore>,
        cache: Arc<BatchCache>,
        admission: Arc<Admission>,
        share: f64,
    ) -> Self {
        let shards = store.num_shards();
        Self {
            store,
            cache,
            admission,
            share,
            epoch: Instant::now(),
            clocks: (0..shards).map(|_| Mutex::new(0.0)).collect(),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            qos_wait_ns: AtomicU64::new(0),
            batches_visited: AtomicU64::new(0),
        }
    }

    /// Spilled visits this tenant served from the shared cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Spilled visits that paid a direct read.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Total time this tenant spent blocked on QoS throttling.
    pub fn qos_wait(&self) -> Duration {
        Duration::from_nanos(self.qos_wait_ns.load(Ordering::Relaxed))
    }

    /// Batches visited (memory and spilled).
    pub fn batches_visited(&self) -> u64 {
        self.batches_visited.load(Ordering::Relaxed)
    }

    /// Heat of a batch: shared visit count weighted by the measured cost
    /// (seconds) to re-read it from its current shard. Falls back to a
    /// nominal 100 MB/s before the profiler has a sample for the shard.
    fn heat(&self, visits: u64, shard: usize, len: usize) -> f64 {
        let bps = self.store.shard_ewma_bps(shard).unwrap_or(1e8);
        visits as f64 * (len as f64 / bps)
    }

    /// Block until this tenant's IO share admits a `len`-byte read on
    /// `shard`. The allowance is `share / mean_active_share` of the
    /// shard's EWMA bandwidth; with no profiler signal yet there is
    /// nothing to apportion and the read proceeds unthrottled.
    fn throttle(&self, shard: usize, len: usize) {
        let Some(ewma_bps) = self.store.shard_ewma_bps(shard) else {
            return;
        };
        let (active, total_share) = self.admission.active();
        if active == 0 || total_share <= 0.0 || self.share <= 0.0 {
            return;
        }
        let mean_share = total_share / active as f64;
        let allowed_bps = (self.share / mean_share * ewma_bps).max(1e3);
        let cost = len as f64 / allowed_bps;
        let now = self.epoch.elapsed().as_secs_f64();
        let start = {
            let mut free = lock(&self.clocks[shard]);
            let start = free.max(now);
            *free = start + cost;
            start
        };
        if start > now {
            let pause = Duration::from_secs_f64(start - now);
            std::thread::sleep(pause);
            let ns = pause.as_nanos() as u64;
            self.qos_wait_ns.fetch_add(ns, Ordering::Relaxed);
            self.store
                .stats()
                .qos_throttle_ns
                .fetch_add(ns, Ordering::Relaxed);
        }
    }
}

impl BatchProvider for TenantProvider {
    fn num_batches(&self) -> usize {
        self.store.num_batches()
    }

    fn num_features(&self) -> usize {
        self.store.num_features()
    }

    fn visit(&self, idx: usize, f: &mut dyn FnMut(&AnyBatch, &[f64])) {
        self.batches_visited.fetch_add(1, Ordering::Relaxed);
        let Some(id) = self.store.spill_id(idx) else {
            // In-memory entry: the store serves it with no IO accounting.
            return self.store.visit(idx, f);
        };
        let labels = self.store.entry_labels(idx);
        let visits = self.store.record_spill_visit(id);
        let (shard, len) = self.store.spill_shard_len(id);
        let heat = self.heat(visits, shard, len);
        let stats = self.store.stats();
        if let Some(bytes) = self.cache.get(id, heat) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            let b = self.store.decode_spill(&bytes);
            f(&b, labels);
            return;
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.throttle(shard, len);
        let mut buf = Vec::with_capacity(len);
        self.store.read_spill_bytes(id, &mut buf);
        let b = self.store.decode_spill(&buf);
        f(&b, labels);
        self.cache.insert(id, buf, heat);
    }

    fn end_epoch(&self) {
        // Adaptive placement keeps rebalancing under multi-tenant load;
        // migrations repoint locations but never change bytes, so resident
        // cache entries stay valid.
        self.store.end_epoch();
    }
}

// ---------------------------------------------------------------------------
// The job server.

/// Server-wide knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeConfig {
    /// Jobs allowed to train at once; later submissions queue. 0 means
    /// unlimited.
    pub max_concurrent: usize,
    /// Byte budget of the shared [`BatchCache`]. 0 disables caching
    /// (every spilled visit pays a direct read).
    pub cache_bytes: usize,
}

/// One training job: a model family plus hyper-parameters, a QoS share,
/// and optionally an eval set for the error curve.
#[derive(Clone)]
pub struct JobSpec {
    pub name: String,
    pub model: ModelSpec,
    pub config: MgdConfig,
    /// Relative IO-share weight (1.0 = an even share).
    pub share: f64,
    /// Data-parallel workers for NN jobs (1 = the sequential trainer).
    pub nn_workers: usize,
    /// Eval set for the per-epoch error curve (`config.record_curve`).
    pub eval: Option<(AnyBatch, Vec<f64>)>,
}

impl JobSpec {
    pub fn new(name: impl Into<String>, model: ModelSpec, config: MgdConfig) -> Self {
        Self {
            name: name.into(),
            model,
            config,
            share: 1.0,
            nn_workers: 1,
            eval: None,
        }
    }

    pub fn with_share(mut self, share: f64) -> Self {
        self.share = share;
        self
    }

    pub fn with_nn_workers(mut self, workers: usize) -> Self {
        self.nn_workers = workers;
        self
    }

    pub fn with_eval(mut self, batch: AnyBatch, labels: Vec<f64>) -> Self {
        self.eval = Some((batch, labels));
        self
    }
}

/// What one finished job reports.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    pub name: String,
    pub share: f64,
    pub seed: u64,
    /// Final model parameters, flattened — compared bit-for-bit against
    /// solo runs by the determinism suite.
    pub weights: Vec<f64>,
    /// Per-epoch eval error rates (empty without an eval set).
    pub curve: Vec<f64>,
    pub train_time: Duration,
    /// Time spent waiting for admission.
    pub queue_wait: Duration,
    /// Time spent blocked on QoS throttling.
    pub qos_wait: Duration,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub batches_visited: u64,
}

/// Runs many training jobs over one shared store + cache. `run` blocks
/// until every job finishes and preserves submission order in its result.
pub struct JobServer {
    store: Arc<ShardedSpillStore>,
    cache: Arc<BatchCache>,
    admission: Arc<Admission>,
}

impl JobServer {
    pub fn new(store: Arc<ShardedSpillStore>, config: ServeConfig) -> Self {
        Self {
            store,
            cache: Arc::new(BatchCache::new(config.cache_bytes)),
            admission: Arc::new(Admission::new(config.max_concurrent)),
        }
    }

    /// The shared compressed-batch pool.
    pub fn cache(&self) -> &BatchCache {
        &self.cache
    }

    /// The store every job trains over.
    pub fn store(&self) -> &ShardedSpillStore {
        &self.store
    }

    /// High-water mark of concurrently admitted jobs.
    pub fn peak_concurrency(&self) -> usize {
        self.admission.peak()
    }

    /// Run all jobs to completion (one thread each; admission gates how
    /// many train at a time). Outcomes line up with the input order.
    pub fn run(&self, jobs: Vec<JobSpec>) -> Vec<JobOutcome> {
        std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .into_iter()
                .map(|job| s.spawn(move || self.run_one(job)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("job thread panicked"))
                .collect()
        })
    }

    fn run_one(&self, job: JobSpec) -> JobOutcome {
        let queued = Instant::now();
        self.admission.admit(job.share);
        let queue_wait = queued.elapsed();
        let tenant = TenantProvider::with_admission(
            Arc::clone(&self.store),
            Arc::clone(&self.cache),
            Arc::clone(&self.admission),
            job.share,
        );
        let outcome = run_job(&job, &tenant, queue_wait);
        self.admission.release(job.share);
        outcome
    }
}

/// Train one job over its tenant view and collect its outcome. NN jobs
/// with `nn_workers > 1` go through the deterministic data-parallel
/// trainer; everything else through [`Trainer`]. Both start from
/// [`ModelSpec::init`], so a job's parameters are bit-identical to a solo
/// run's no matter which entry point trained it.
fn run_job(job: &JobSpec, tenant: &TenantProvider, queue_wait: Duration) -> JobOutcome {
    let (weights, curve, train_time) = match &job.model {
        ModelSpec::NeuralNet { .. } if job.nn_workers > 1 => {
            let init = job.model.init(tenant.num_features(), job.config.seed);
            let TrainedModel::NeuralNet(mut nn) = init else {
                unreachable!("NeuralNet spec initialized a different family")
            };
            let report = train_nn_parallel_report(&mut nn, tenant, &job.config, job.nn_workers);
            let mut model = TrainedModel::NeuralNet(nn);
            // The parallel trainer has no per-epoch curve hook; report the
            // final error as a single point when an eval set is present.
            let curve = match &job.eval {
                Some((b, y)) => vec![model.error_rate(b, y)],
                None => Vec::new(),
            };
            (model.weights(), curve, report.train_time)
        }
        _ => {
            let trainer = Trainer::new(job.config.clone());
            let eval = job.eval.as_ref().map(|(b, y)| (b, y.as_slice()));
            let report = trainer.train(&job.model, tenant, eval);
            let curve = report.curve.iter().map(|p| p.error_rate).collect();
            (report.model.weights(), curve, report.train_time)
        }
    };
    JobOutcome {
        name: job.name.clone(),
        share: job.share,
        seed: job.config.seed,
        weights,
        curve,
        train_time,
        queue_wait,
        qos_wait: tenant.qos_wait(),
        cache_hits: tenant.cache_hits(),
        cache_misses: tenant.cache_misses(),
        batches_visited: tenant.batches_visited(),
    }
}
