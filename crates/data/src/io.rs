//! Async spill IO engines behind the [`SpillFile`] seam.
//!
//! PR 2 made spill reads positional and striped them across shard files,
//! but every reader (prefetch worker or visitor) still blocked on a
//! synchronous `read_exact_at`, so read latency serialized with decode
//! inside each worker. This module splits submission from completion —
//! the io_uring idiom, portable — so the prefetch pipeline can keep many
//! reads in flight per shard while decode proceeds on completed buffers:
//!
//! ```text
//!             submit(shard, offset, len, buf) -> Ticket
//!   visitor ──────────────────────────────────────────▶ SpillIo engine
//!                                                        │  pool: N IO workers
//!                                                        │  ring: per-shard queues,
//!                                                        │        adjacent reads
//!                                                        │        coalesced
//!   decode  ◀──────────────────────────────────────────┘
//!   workers   complete() -> Completion {ticket, buf, result}   (out of order)
//! ```
//!
//! Two backends implement [`SpillIo`]:
//!
//! * [`PoolIo`] — a portable worker pool: submissions queue centrally,
//!   N IO threads serve them with positional reads, completions surface
//!   in whatever order the reads finish.
//! * [`RingIo`] — a batched, ring-style backend: submissions route to
//!   per-shard queues; each ring thread drains its shards' queues in
//!   bursts, sorts the burst by file offset, **coalesces adjacent
//!   ranges into one physical read**, and completes the members out of
//!   order. With compression-aware shard placement
//!   ([`crate::store::ShardPlacement::Pack`]) one submission burst over
//!   small encoded batches collapses into a handful of large reads.
//!
//! Both backends charge the same per-shard [`BandwidthClock`] the
//! synchronous path uses, so the `disk_mbps` model extends to overlapped
//! requests: concurrent reads of one shard still share that device's
//! bandwidth (the clock serializes their reservations), while the
//! *caller* no longer sleeps — the engine's IO threads absorb the delay,
//! which is exactly the overlap the paper's compute-bound regime needs.

use std::collections::VecDeque;
use std::fs::File;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Recover a poisoned guard: a panicking holder never leaves the plain
/// queues behind these locks in an invalid state.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// The positional-read seam and the simulated-bandwidth device model.

/// A spill file readable at arbitrary offsets by any number of threads.
///
/// On unix the read path is positional (`pread` via
/// `std::os::unix::fs::FileExt::read_exact_at`): no seek, no lock, no
/// shared cursor. Elsewhere a portable fallback serializes seek+read
/// pairs behind a mutex.
#[derive(Debug)]
pub(crate) struct SpillFile {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: Mutex<File>,
}

impl SpillFile {
    pub(crate) fn new(file: File) -> Self {
        #[cfg(unix)]
        {
            Self { file }
        }
        #[cfg(not(unix))]
        {
            Self {
                file: Mutex::new(file),
            }
        }
    }

    /// Read exactly `buf.len()` bytes at `offset`.
    pub(crate) fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = lock(&self.file);
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(buf)
        }
    }
}

/// Simulated-bandwidth clock for one spill device (shard). Readers reserve
/// an interval on the device timeline and sleep until their reservation
/// completes, so concurrent readers of one device share its bandwidth
/// (the aggregate never exceeds `mbps`) while readers of other devices
/// are unaffected. The delay is accounted per-shard with no lock held.
/// Under the async engines the *IO thread* holds the reservation, so the
/// visitor's compute overlaps the simulated device time.
#[derive(Debug, Default)]
pub(crate) struct BandwidthClock {
    /// Device busy-until, in nanoseconds since the store's epoch.
    busy_until_ns: AtomicU64,
}

impl BandwidthClock {
    pub(crate) fn charge(&self, epoch: Instant, len: usize, mbps: f64, stats: &IoStats) {
        let delay_ns = (len as f64 / (mbps * 1e6) * 1e9) as u64;
        let now = epoch.elapsed().as_nanos() as u64;
        let mut cur = self.busy_until_ns.load(Ordering::Relaxed);
        let deadline = loop {
            let deadline = cur.max(now) + delay_ns;
            match self.busy_until_ns.compare_exchange_weak(
                cur,
                deadline,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break deadline,
                Err(seen) => cur = seen,
            }
        };
        stats.throttle_ns.fetch_add(delay_ns, Ordering::Relaxed);
        if deadline > now {
            std::thread::sleep(Duration::from_nanos(deadline - now));
        }
    }
}

/// One spill device: a positional-read file plus its bandwidth clock.
#[derive(Debug)]
pub(crate) struct SpillDevice {
    pub(crate) file: SpillFile,
    pub(crate) clock: BandwidthClock,
}

impl SpillDevice {
    pub(crate) fn new(file: File) -> Self {
        Self {
            file: SpillFile::new(file),
            clock: BandwidthClock::default(),
        }
    }
}

/// The shared spill-device context every read path goes through: the
/// shard files, the bandwidth model, and the store's [`IoStats`]. Both
/// the synchronous paths and the [`SpillIo`] engines read exclusively via
/// [`IoShards::read_range`], so the throttle model and the accounting can
/// never drift apart between them.
pub(crate) struct IoShards {
    pub(crate) devices: Vec<SpillDevice>,
    pub(crate) disk_mbps: Option<f64>,
    pub(crate) epoch: Instant,
    pub(crate) stats: IoStats,
}

impl IoShards {
    /// Read `len` raw bytes at `offset` of `shard` into `buf` (cleared and
    /// resized): positional read, bandwidth charge, stats accounting.
    pub(crate) fn read_range(
        &self,
        shard: usize,
        offset: u64,
        len: usize,
        buf: &mut Vec<u8>,
    ) -> std::io::Result<()> {
        buf.clear();
        buf.resize(len, 0);
        let dev = &self.devices[shard];
        dev.file.read_exact_at(buf, offset)?;
        if let Some(mbps) = self.disk_mbps {
            dev.clock.charge(self.epoch, len, mbps, &self.stats);
        }
        self.stats.disk_reads.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_read
            .fetch_add(len as u64, Ordering::Relaxed);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// IO statistics.

/// Number of power-of-two completion-latency buckets ([`LatencyHistogram`]).
pub const LATENCY_BUCKETS: usize = 16;

/// Lock-free log2 histogram of submit→complete latencies in microseconds:
/// bucket `b` counts completions in `[2^(b-1), 2^b)` µs (bucket 0 is
/// `< 1 µs`, the last bucket is open-ended).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let b = if us == 0 {
            0
        } else {
            (64 - us.leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
        };
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> [u64; LATENCY_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// Upper bound of latency bucket `b` in microseconds.
pub fn latency_bucket_upper_us(b: usize) -> u64 {
    1u64 << b
}

/// Cumulative IO statistics (updated on every spilled read/submission).
///
/// All counters are independent relaxed atomics: a [`IoStats::snapshot`]
/// taken mid-run can observe them at slightly different instants (e.g. a
/// read whose `disk_reads` increment is visible but whose `bytes_read`
/// is not yet). [`IoStats::snapshot_stable`] retries until two
/// back-to-back snapshots agree, which converges immediately whenever
/// the store is quiescent and bounds the skew to one in-flight update
/// otherwise. Counters that are only ever touched by the visiting thread
/// itself (`spill_requests`, `prefetch_hits`, `prefetch_misses`) are
/// exact the moment every visit has returned — the stress and
/// fault-injection suites assert `hits + misses == spill_requests`
/// ([`IoSnapshot::assert_consistent`]).
#[derive(Debug, Default)]
pub struct IoStats {
    /// Physical spill reads performed (a coalesced ring read counts once).
    pub disk_reads: AtomicU64,
    /// Bytes read from spill files.
    pub bytes_read: AtomicU64,
    /// Spilled visits served by the prefetch pipeline (the batch was
    /// already decoded, or its read was in flight and overlapped compute).
    pub prefetch_hits: AtomicU64,
    /// Spilled visits that found no prefetch slot and read synchronously.
    pub prefetch_misses: AtomicU64,
    /// Spilled visits requested through the prefetch pipeline; every one
    /// resolves to exactly one hit or miss by the time `visit` returns.
    pub spill_requests: AtomicU64,
    /// Simulated bandwidth delay accounted against the shard clocks, in
    /// nanoseconds (see [`crate::store::StoreConfig::disk_mbps`]).
    pub throttle_ns: AtomicU64,
    /// Requests submitted to an async [`SpillIo`] engine.
    pub submitted: AtomicU64,
    /// Completions surfaced by an async [`SpillIo`] engine.
    pub completed: AtomicU64,
    /// Requests that rode along a coalesced ring read instead of costing
    /// their own physical read.
    pub coalesced_reads: AtomicU64,
    /// Submitted-but-not-completed requests right now (gauge).
    pub in_flight: AtomicU64,
    /// High-water mark of `in_flight`.
    pub max_in_flight: AtomicU64,
    /// Submit→complete latency distribution for async requests.
    pub latency: LatencyHistogram,
}

impl IoStats {
    /// Point-in-time copy of all counters. Each counter is read once with
    /// relaxed ordering; see the type docs for the (bounded) skew a
    /// mid-run snapshot can observe.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            disk_reads: self.disk_reads.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            prefetch_hits: self.prefetch_hits.load(Ordering::Relaxed),
            prefetch_misses: self.prefetch_misses.load(Ordering::Relaxed),
            spill_requests: self.spill_requests.load(Ordering::Relaxed),
            throttle_ns: self.throttle_ns.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            coalesced_reads: self.coalesced_reads.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            max_in_flight: self.max_in_flight.load(Ordering::Relaxed),
            latency_us: self.latency.snapshot(),
        }
    }

    /// Seqlock-style stable snapshot: re-read until two consecutive
    /// snapshots agree (bounded retries). At quiescence the first retry
    /// already agrees; under concurrent writers this still bounds the
    /// cross-counter skew to whatever changed during one read pass.
    pub fn snapshot_stable(&self) -> IoSnapshot {
        let mut prev = self.snapshot();
        for _ in 0..64 {
            let cur = self.snapshot();
            if cur == prev {
                return cur;
            }
            prev = cur;
        }
        prev
    }

    pub(crate) fn record_submit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let cur = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_in_flight.fetch_max(cur, Ordering::Relaxed);
    }

    pub(crate) fn record_complete(&self, submitted_at: Instant) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.latency.record(submitted_at.elapsed());
    }
}

/// Plain-value copy of [`IoStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    pub disk_reads: u64,
    pub bytes_read: u64,
    pub prefetch_hits: u64,
    pub prefetch_misses: u64,
    pub spill_requests: u64,
    pub throttle_ns: u64,
    pub submitted: u64,
    pub completed: u64,
    pub coalesced_reads: u64,
    pub in_flight: u64,
    pub max_in_flight: u64,
    pub latency_us: [u64; LATENCY_BUCKETS],
}

impl IoSnapshot {
    /// Approximate latency percentile (`p` in 0..=100): the upper bound of
    /// the bucket containing that quantile, in microseconds. 0 when no
    /// async completions were recorded.
    pub fn latency_percentile_us(&self, p: u64) -> u64 {
        let total: u64 = self.latency_us.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = (total * p).div_ceil(100).max(1);
        let mut seen = 0;
        for (b, &n) in self.latency_us.iter().enumerate() {
            seen += n;
            if seen >= target {
                return latency_bucket_upper_us(b);
            }
        }
        latency_bucket_upper_us(LATENCY_BUCKETS - 1)
    }

    /// Assert the cross-counter invariants that must hold once every
    /// visit has returned (quiescent or not — these counters are only
    /// written by the visiting threads themselves): every prefetch-path
    /// request resolved to exactly one hit or miss. The engine-side
    /// counters must satisfy `completed <= submitted` and physical reads
    /// plus coalesced riders must cover every completion.
    #[track_caller]
    pub fn assert_consistent(&self) {
        assert_eq!(
            self.prefetch_hits + self.prefetch_misses,
            self.spill_requests,
            "prefetch hit/miss accounting diverged from requests: {self:?}"
        );
        assert!(
            self.completed <= self.submitted,
            "more completions than submissions: {self:?}"
        );
        assert!(
            self.disk_reads + self.coalesced_reads >= self.completed,
            "completions not covered by physical+coalesced reads: {self:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// The SpillIo submission/completion seam.

/// Engine selector threaded through `StoreConfig` and `toc train --io`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IoEngineKind {
    /// No engine: prefetch workers read synchronously (read latency
    /// serializes with decode inside each worker — the PR 2 behavior).
    #[default]
    Sync,
    /// Portable worker-pool backend ([`PoolIo`]).
    Pool,
    /// Batched per-shard backend with adjacent-read coalescing ([`RingIo`]).
    Ring,
}

impl IoEngineKind {
    pub fn name(self) -> &'static str {
        match self {
            IoEngineKind::Sync => "sync",
            IoEngineKind::Pool => "pool",
            IoEngineKind::Ring => "ring",
        }
    }
}

impl std::fmt::Display for IoEngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for IoEngineKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sync" => Ok(IoEngineKind::Sync),
            "pool" => Ok(IoEngineKind::Pool),
            "ring" => Ok(IoEngineKind::Ring),
            other => Err(format!("unknown io engine {other:?} (sync|pool|ring)")),
        }
    }
}

/// One read request: `len` bytes at `offset` of shard `shard`.
#[derive(Clone, Copy, Debug)]
pub struct SpillRequest {
    pub shard: usize,
    pub offset: u64,
    pub len: usize,
}

/// Engine-assigned request id, echoed by the matching [`Completion`].
pub type Ticket = u64;

/// A finished read: the caller's buffer back (filled on success) plus the
/// IO result. Completions surface in whatever order reads finish —
/// consumers must route by `ticket`, never by submission order.
#[derive(Debug)]
pub struct Completion {
    pub ticket: Ticket,
    pub shard: usize,
    pub buf: Vec<u8>,
    pub result: std::io::Result<()>,
}

/// The async spill-IO seam: submit positional reads, harvest completions
/// out of order. All engines are `Send + Sync`; any number of threads may
/// submit and complete concurrently.
pub trait SpillIo: Send + Sync {
    /// Queue a read. `buf` is recycled through the completion (resized to
    /// `req.len`), so steady-state submission allocates nothing.
    fn submit(&self, req: SpillRequest, buf: Vec<u8>) -> Ticket;

    /// Block until a completion is available or the engine shuts down
    /// (`None`). Concurrent callers each receive distinct completions.
    fn complete(&self) -> Option<Completion>;

    /// Wake every blocked `complete` caller and stop the IO threads.
    /// Queued-but-unserved submissions are dropped.
    fn shutdown(&self);

    /// Submitted-but-not-completed request count (gauge).
    fn in_flight(&self) -> usize;
}

/// Completion queue shared by the engine implementations: a condvar-woken
/// deque plus the shutdown latch.
pub(crate) struct CompletionQueue {
    q: Mutex<(VecDeque<Completion>, bool)>,
    cv: Condvar,
}

impl CompletionQueue {
    pub(crate) fn new() -> Self {
        Self {
            q: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn push(&self, c: Completion) {
        lock(&self.q).0.push_back(c);
        self.cv.notify_one();
    }

    pub(crate) fn pop(&self) -> Option<Completion> {
        let mut g = lock(&self.q);
        loop {
            if let Some(c) = g.0.pop_front() {
                return Some(c);
            }
            if g.1 {
                return None;
            }
            g = wait(&self.cv, g);
        }
    }

    pub(crate) fn shut_down(&self) {
        lock(&self.q).1 = true;
        self.cv.notify_all();
    }

    pub(crate) fn is_shut_down(&self) -> bool {
        lock(&self.q).1
    }
}

// ---------------------------------------------------------------------------
// Shared submission plumbing.

pub(crate) struct Submission {
    pub(crate) ticket: Ticket,
    pub(crate) req: SpillRequest,
    pub(crate) buf: Vec<u8>,
    pub(crate) at: Instant,
}

/// Central submission queue shared by the pool engine and the
/// fault-injection double: ticket assignment, `IoStats` accounting, and
/// condvar wakeup live in exactly one place, so the test double can never
/// drift from the production submission contract.
pub(crate) struct SubmissionQueue {
    q: Mutex<VecDeque<Submission>>,
    cv: Condvar,
    next_ticket: AtomicU64,
}

impl SubmissionQueue {
    pub(crate) fn new() -> Self {
        Self {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            next_ticket: AtomicU64::new(0),
        }
    }

    /// Assign a ticket, account the submission, enqueue, wake one worker.
    pub(crate) fn submit(&self, io: &IoShards, req: SpillRequest, buf: Vec<u8>) -> Ticket {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        io.stats.record_submit();
        lock(&self.q).push_back(Submission {
            ticket,
            req,
            buf,
            at: Instant::now(),
        });
        self.cv.notify_one();
        ticket
    }

    /// Non-blocking pop.
    pub(crate) fn try_pop(&self) -> Option<Submission> {
        lock(&self.q).pop_front()
    }

    /// Block until a submission arrives or `shut_down()` returns true.
    pub(crate) fn pop_wait(&self, shut_down: impl Fn() -> bool) -> Option<Submission> {
        let mut g = lock(&self.q);
        loop {
            if shut_down() {
                return None;
            }
            if let Some(s) = g.pop_front() {
                return Some(s);
            }
            g = wait(&self.cv, g);
        }
    }

    /// Sleep until new work arrives or `timeout` elapses (spurious wakeups
    /// allowed; callers loop).
    pub(crate) fn wait_briefly(&self, timeout: Duration) {
        let g = lock(&self.q);
        if g.is_empty() {
            let _ = self
                .cv
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Wake every blocked `pop_wait` caller (shutdown path).
    pub(crate) fn notify_all(&self) {
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// PoolIo: the portable worker-pool backend.

struct PoolShared {
    io: Arc<IoShards>,
    subq: SubmissionQueue,
    comp: CompletionQueue,
}

/// Portable worker-pool [`SpillIo`] backend: N threads pull submissions
/// off a central queue and serve them with positional reads. Reads of
/// different shards proceed fully in parallel; reads of one shard share
/// its bandwidth clock. Completion order is read-finish order.
pub struct PoolIo {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

pub(crate) const MAX_IO_THREADS: usize = 8;

impl PoolIo {
    pub(crate) fn start(io: Arc<IoShards>, workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            io,
            subq: SubmissionQueue::new(),
            comp: CompletionQueue::new(),
        });
        let threads = (0..workers.clamp(1, MAX_IO_THREADS))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker(&shared))
            })
            .collect();
        Self { shared, threads }
    }

    fn worker(shared: &PoolShared) {
        while let Some(sub) = shared.subq.pop_wait(|| shared.comp.is_shut_down()) {
            let Submission {
                ticket,
                req,
                mut buf,
                at,
            } = sub;
            let result = shared
                .io
                .read_range(req.shard, req.offset, req.len, &mut buf);
            shared.io.stats.record_complete(at);
            shared.comp.push(Completion {
                ticket,
                shard: req.shard,
                buf,
                result,
            });
        }
    }
}

impl SpillIo for PoolIo {
    fn submit(&self, req: SpillRequest, buf: Vec<u8>) -> Ticket {
        self.shared.subq.submit(&self.shared.io, req, buf)
    }

    fn complete(&self) -> Option<Completion> {
        self.shared.comp.pop()
    }

    fn shutdown(&self) {
        self.shared.comp.shut_down();
        self.shared.subq.notify_all();
    }

    fn in_flight(&self) -> usize {
        self.shared.io.stats.in_flight.load(Ordering::Relaxed) as usize
    }
}

impl Drop for PoolIo {
    fn drop(&mut self) {
        self.shutdown();
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// RingIo: batched per-shard queues with adjacent-read coalescing.

struct RingShared {
    io: Arc<IoShards>,
    /// One inbox per ring thread; shard `s` routes to inbox `s % threads`.
    inboxes: Vec<(Mutex<Vec<Submission>>, Condvar)>,
    comp: CompletionQueue,
    next_ticket: AtomicU64,
}

/// Batched "ring" [`SpillIo`] backend. Submissions route to per-thread
/// inboxes by shard; each ring thread drains its inbox in bursts, groups
/// the burst by shard, sorts each group by file offset and **coalesces
/// adjacent ranges into one physical read** (one bandwidth-clock charge
/// for the merged length), then completes the members out of order. A
/// burst of K lookahead submissions over contiguously-placed batches
/// (`ShardPlacement::Pack`) thus costs a handful of large reads instead
/// of K small ones.
pub struct RingIo {
    shared: Arc<RingShared>,
    threads: Vec<JoinHandle<()>>,
}

impl RingIo {
    pub(crate) fn start(io: Arc<IoShards>) -> Self {
        let n_threads = io.devices.len().clamp(1, MAX_IO_THREADS);
        let shared = Arc::new(RingShared {
            io,
            inboxes: (0..n_threads)
                .map(|_| (Mutex::new(Vec::new()), Condvar::new()))
                .collect(),
            comp: CompletionQueue::new(),
            next_ticket: AtomicU64::new(0),
        });
        let threads = (0..n_threads)
            .map(|t| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::ring_thread(&shared, t))
            })
            .collect();
        Self { shared, threads }
    }

    fn ring_thread(shared: &RingShared, t: usize) {
        // Reusable staging for coalesced reads: the merged range lands
        // here once, then splits into the members' recycled buffers — no
        // per-burst allocation in steady state.
        let mut merged = Vec::new();
        loop {
            // Drain the whole inbox in one burst — the batching window.
            let mut burst = {
                let (m, cv) = &shared.inboxes[t];
                let mut g = lock(m);
                loop {
                    if shared.comp.is_shut_down() {
                        return;
                    }
                    if !g.is_empty() {
                        break std::mem::take(&mut *g);
                    }
                    g = wait(cv, g);
                }
            };
            // Group by shard, then serve each group offset-sorted with
            // adjacent ranges merged into one read.
            for r in plan_runs(&mut burst) {
                Self::serve_run(shared, &mut burst[r], &mut merged);
            }
            // Return the burst members' buffers through completions; the
            // drained Vec itself is dropped (its capacity is tiny).
        }
    }

    /// Serve one maximal run of same-shard, file-adjacent requests
    /// (one range from [`plan_runs`]): a single physical read of the
    /// merged range, split back into the members' buffers. A run of one
    /// degenerates to a plain read.
    fn serve_run(shared: &RingShared, run: &mut [Submission], merged: &mut Vec<u8>) {
        let shard = run[0].req.shard;
        let base = run[0].req.offset;
        let merged_len: usize = run.iter().map(|s| s.req.len).sum();
        let io = &shared.io;
        if run.len() == 1 {
            let Submission { req, .. } = run[0];
            let mut buf = std::mem::take(&mut run[0].buf);
            let result = io.read_range(req.shard, req.offset, req.len, &mut buf);
            io.stats.record_complete(run[0].at);
            shared.comp.push(Completion {
                ticket: run[0].ticket,
                shard,
                buf,
                result,
            });
            return;
        }
        // One physical read for the whole run, staged through the ring
        // thread's reusable buffer (read_range clears and resizes it).
        let result = io.read_range(shard, base, merged_len, merged);
        io.stats
            .coalesced_reads
            .fetch_add(run.len() as u64 - 1, Ordering::Relaxed);
        let mut cursor = 0usize;
        for sub in run.iter_mut() {
            let mut buf = std::mem::take(&mut sub.buf);
            let member_result = match &result {
                Ok(()) => {
                    buf.clear();
                    buf.extend_from_slice(&merged[cursor..cursor + sub.req.len]);
                    Ok(())
                }
                Err(e) => Err(std::io::Error::new(e.kind(), e.to_string())),
            };
            cursor += sub.req.len;
            io.stats.record_complete(sub.at);
            shared.comp.push(Completion {
                ticket: sub.ticket,
                shard,
                buf,
                result: member_result,
            });
        }
    }
}

/// The ring engine's batching plan, separated from serving so it can be
/// tested deterministically (whether adjacent requests actually land in
/// one burst is scheduling-dependent; what a burst merges into is not):
/// sort a drained burst by `(shard, offset)` and return the maximal runs
/// of same-shard, file-adjacent requests as index ranges into the sorted
/// burst.
fn plan_runs(burst: &mut [Submission]) -> Vec<std::ops::Range<usize>> {
    burst.sort_by_key(|s| (s.req.shard, s.req.offset));
    let mut runs = Vec::new();
    let mut i = 0;
    while i < burst.len() {
        let shard = burst[i].req.shard;
        let start = i;
        let mut end_off = burst[i].req.offset + burst[i].req.len as u64;
        i += 1;
        while i < burst.len() && burst[i].req.shard == shard && burst[i].req.offset == end_off {
            end_off += burst[i].req.len as u64;
            i += 1;
        }
        runs.push(start..i);
    }
    runs
}

impl SpillIo for RingIo {
    fn submit(&self, req: SpillRequest, buf: Vec<u8>) -> Ticket {
        let ticket = self.shared.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.shared.io.stats.record_submit();
        let t = req.shard % self.shared.inboxes.len();
        let (m, cv) = &self.shared.inboxes[t];
        lock(m).push(Submission {
            ticket,
            req,
            buf,
            at: Instant::now(),
        });
        cv.notify_one();
        ticket
    }

    fn complete(&self) -> Option<Completion> {
        self.shared.comp.pop()
    }

    fn shutdown(&self) {
        self.shared.comp.shut_down();
        for (_, cv) in &self.shared.inboxes {
            cv.notify_all();
        }
    }

    fn in_flight(&self) -> usize {
        self.shared.io.stats.in_flight.load(Ordering::Relaxed) as usize
    }
}

impl Drop for RingIo {
    fn drop(&mut self) {
        self.shutdown();
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::io::Write;

    /// Build an IoShards over `n_shards` temp files, each holding the
    /// given chunks laid out back to back. Returns the shard layouts
    /// (shard, offset, bytes) in write order.
    #[allow(clippy::type_complexity)]
    fn test_shards(
        n_shards: usize,
        chunks: &[(usize, Vec<u8>)],
    ) -> (
        Arc<IoShards>,
        Vec<(SpillRequest, Vec<u8>)>,
        Vec<std::path::PathBuf>,
    ) {
        let dir = std::env::temp_dir();
        let mut files = Vec::new();
        let mut paths = Vec::new();
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        for s in 0..n_shards {
            let path = dir.join(format!("toc-io-test-{}-{id}-{s}.bin", std::process::id()));
            let f = std::fs::OpenOptions::new()
                .create(true)
                .write(true)
                .read(true)
                .truncate(true)
                .open(&path)
                .unwrap();
            files.push(f);
            paths.push(path);
        }
        let mut offsets = vec![0u64; n_shards];
        let mut layout = Vec::new();
        for (shard, bytes) in chunks {
            files[*shard].write_all(bytes).unwrap();
            layout.push((
                SpillRequest {
                    shard: *shard,
                    offset: offsets[*shard],
                    len: bytes.len(),
                },
                bytes.clone(),
            ));
            offsets[*shard] += bytes.len() as u64;
        }
        let devices = files.into_iter().map(SpillDevice::new).collect();
        (
            Arc::new(IoShards {
                devices,
                disk_mbps: None,
                epoch: Instant::now(),
                stats: IoStats::default(),
            }),
            layout,
            paths,
        )
    }

    fn chunk(shard: usize, fill: u8, len: usize) -> (usize, Vec<u8>) {
        (shard, vec![fill; len])
    }

    fn drain_and_check(engine: &dyn SpillIo, expected: &HashMap<Ticket, Vec<u8>>) {
        for _ in 0..expected.len() {
            let c = engine.complete().expect("engine shut down early");
            assert!(c.result.is_ok(), "{:?}", c.result);
            assert_eq!(&c.buf, &expected[&c.ticket], "ticket {}", c.ticket);
        }
        assert_eq!(engine.in_flight(), 0);
    }

    #[test]
    fn pool_engine_completes_all_requests_out_of_order_safe() {
        let chunks: Vec<_> = (0..10u8)
            .map(|i| chunk(i as usize % 3, i, 64 + i as usize))
            .collect();
        let (io, layout, paths) = test_shards(3, &chunks);
        let engine = PoolIo::start(Arc::clone(&io), 4);
        let mut expected = HashMap::new();
        for (req, bytes) in &layout {
            let t = engine.submit(*req, Vec::new());
            expected.insert(t, bytes.clone());
        }
        drain_and_check(&engine, &expected);
        let s = io.stats.snapshot_stable();
        assert_eq!(s.submitted, 10);
        assert_eq!(s.completed, 10);
        assert_eq!(s.disk_reads, 10);
        assert!(s.max_in_flight >= 1);
        assert_eq!(s.latency_us.iter().sum::<u64>(), 10);
        drop(engine);
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn ring_engine_coalesces_adjacent_reads() {
        // 6 chunks on one shard, all adjacent: submitted in one burst
        // before the ring thread wakes they should merge into few reads.
        let chunks: Vec<_> = (0..6u8).map(|i| chunk(0, i, 128)).collect();
        let (io, layout, paths) = test_shards(1, &chunks);
        let engine = RingIo::start(Arc::clone(&io));
        // Hold the ring thread busy-less: submit everything in one burst
        // under no lock, then harvest. The thread drains the inbox as one
        // batch, so at least some requests must coalesce.
        let mut expected = HashMap::new();
        for (req, bytes) in &layout {
            let t = engine.submit(*req, Vec::new());
            expected.insert(t, bytes.clone());
        }
        drain_and_check(&engine, &expected);
        let s = io.stats.snapshot_stable();
        assert_eq!(s.submitted, 6);
        assert_eq!(s.completed, 6);
        // Whatever the interleaving, reads + riders covers all 6; and the
        // byte totals match exactly (coalescing must not re-read).
        assert_eq!(s.disk_reads + s.coalesced_reads, 6, "{s:?}");
        assert_eq!(s.bytes_read, 6 * 128);
        s.assert_consistent();
        drop(engine);
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn plan_runs_merges_adjacent_ranges_deterministically() {
        let sub = |shard: usize, offset: u64, len: usize| Submission {
            ticket: offset, // arbitrary
            req: SpillRequest { shard, offset, len },
            buf: Vec::new(),
            at: Instant::now(),
        };
        // Submitted out of order, across two shards, with one gap:
        // shard 0 holds [0,100), [100,250), gap, [300,350);
        // shard 1 holds [0,80), [80,160).
        let mut burst = vec![
            sub(1, 80, 80),
            sub(0, 100, 150),
            sub(0, 300, 50),
            sub(0, 0, 100),
            sub(1, 0, 80),
        ];
        let runs = plan_runs(&mut burst);
        // Sorted: (0,0) (0,100) (0,300) (1,0) (1,80) → runs of 2, 1, 2.
        assert_eq!(runs, vec![0..2, 2..3, 3..5]);
        let lens: Vec<usize> = runs
            .iter()
            .map(|r| burst[r.clone()].iter().map(|s| s.req.len).sum())
            .collect();
        assert_eq!(lens, vec![250, 50, 160]);
        // Degenerate bursts.
        assert_eq!(plan_runs(&mut []), Vec::<std::ops::Range<usize>>::new());
        assert_eq!(plan_runs(&mut [sub(2, 7, 3)]), vec![0..1]);
    }

    #[test]
    fn ring_engine_serves_interleaved_shards() {
        let chunks: Vec<_> = (0..12u8).map(|i| chunk(i as usize % 4, i, 96)).collect();
        let (io, layout, paths) = test_shards(4, &chunks);
        let engine = RingIo::start(Arc::clone(&io));
        let mut expected = HashMap::new();
        for (req, bytes) in &layout {
            let t = engine.submit(*req, Vec::new());
            expected.insert(t, bytes.clone());
        }
        drain_and_check(&engine, &expected);
        io.stats.snapshot_stable().assert_consistent();
        drop(engine);
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn engines_surface_read_errors_per_request() {
        let (io, layout, paths) = test_shards(1, &[chunk(0, 7, 64)]);
        let engine = PoolIo::start(Arc::clone(&io), 2);
        // Past-EOF read must complete with an error, not hang or panic.
        let t_bad = engine.submit(
            SpillRequest {
                shard: 0,
                offset: 1 << 20,
                len: 32,
            },
            Vec::new(),
        );
        let t_good = engine.submit(layout[0].0, Vec::new());
        let mut seen = HashMap::new();
        for _ in 0..2 {
            let c = engine.complete().unwrap();
            seen.insert(c.ticket, c.result.is_ok());
        }
        assert!(!seen[&t_bad]);
        assert!(seen[&t_good]);
        drop(engine);
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn shutdown_wakes_blocked_completers() {
        let (io, _, paths) = test_shards(1, &[chunk(0, 1, 8)]);
        for engine in [
            Box::new(PoolIo::start(Arc::clone(&io), 2)) as Box<dyn SpillIo>,
            Box::new(RingIo::start(Arc::clone(&io))) as Box<dyn SpillIo>,
        ] {
            let waiter = {
                let engine: &dyn SpillIo = &*engine;
                std::thread::scope(|s| {
                    let h = s.spawn(|| engine.complete().is_none());
                    std::thread::sleep(Duration::from_millis(10));
                    engine.shutdown();
                    h.join().unwrap()
                })
            };
            assert!(waiter, "complete() must return None after shutdown");
        }
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn engine_kind_parses_and_prints() {
        for (s, k) in [
            ("sync", IoEngineKind::Sync),
            ("POOL", IoEngineKind::Pool),
            ("Ring", IoEngineKind::Ring),
        ] {
            assert_eq!(s.parse::<IoEngineKind>().unwrap(), k);
            assert_eq!(k.name().parse::<IoEngineKind>().unwrap(), k);
        }
        assert!("uring".parse::<IoEngineKind>().is_err());
    }

    #[test]
    fn latency_histogram_buckets_and_percentiles() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(0));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        let snap = h.snapshot();
        assert_eq!(snap.iter().sum::<u64>(), 4);
        assert_eq!(snap[0], 1); // <1us
        assert_eq!(snap[2], 2); // [2,4)us
        let s = IoSnapshot {
            latency_us: snap,
            ..Default::default()
        };
        assert_eq!(s.latency_percentile_us(50), 4);
        assert_eq!(s.latency_percentile_us(99), 1024);
        assert_eq!(IoSnapshot::default().latency_percentile_us(50), 0);
    }
}
