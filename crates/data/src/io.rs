//! Async spill IO engines behind the [`SpillFile`] seam.
//!
//! PR 2 made spill reads positional and striped them across shard files,
//! but every reader (prefetch worker or visitor) still blocked on a
//! synchronous `read_exact_at`, so read latency serialized with decode
//! inside each worker. This module splits submission from completion —
//! the io_uring idiom, portable — so the prefetch pipeline can keep many
//! reads in flight per shard while decode proceeds on completed buffers:
//!
//! ```text
//!             submit(shard, offset, len, buf) -> Ticket
//!   visitor ──────────────────────────────────────────▶ SpillIo engine
//!                                                        │  pool: N IO workers
//!                                                        │  ring: per-shard queues,
//!                                                        │        adjacent reads
//!                                                        │        coalesced
//!   decode  ◀──────────────────────────────────────────┘
//!   workers   complete() -> Completion {ticket, buf, result}   (out of order)
//! ```
//!
//! Two backends implement [`SpillIo`]:
//!
//! * [`PoolIo`] — a portable worker pool: submissions queue centrally,
//!   N IO threads serve them with positional reads, completions surface
//!   in whatever order the reads finish.
//! * [`RingIo`] — a batched, ring-style backend: submissions route to
//!   per-shard queues; each ring thread drains its shards' queues in
//!   bursts, sorts the burst by file offset, **coalesces adjacent
//!   ranges into one physical read**, and completes the members out of
//!   order. With compression-aware shard placement
//!   ([`crate::store::ShardPlacement::Pack`]) one submission burst over
//!   small encoded batches collapses into a handful of large reads.
//!
//! Both backends charge the same per-shard [`BandwidthClock`] the
//! synchronous path uses, so the `disk_mbps` model extends to overlapped
//! requests: concurrent reads of one shard still share that device's
//! bandwidth (the clock serializes their reservations), while the
//! *caller* no longer sleeps — the engine's IO threads absorb the delay,
//! which is exactly the overlap the paper's compute-bound regime needs.

use std::collections::VecDeque;
use std::fs::File;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{
    Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use toc_formats::MatrixBatch;
use toc_linalg::DenseMatrix;

/// Recover a poisoned guard: a panicking holder never leaves the plain
/// queues behind these locks in an invalid state.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn rlock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn wlock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// The positional-read seam and the simulated-bandwidth device model.

/// A spill file readable at arbitrary offsets by any number of threads.
///
/// On unix the read path is positional (`pread` via
/// `std::os::unix::fs::FileExt::read_exact_at`): no seek, no lock, no
/// shared cursor. Elsewhere a portable fallback serializes seek+read
/// pairs behind a mutex.
#[derive(Debug)]
pub(crate) struct SpillFile {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: Mutex<File>,
}

impl SpillFile {
    pub(crate) fn new(file: File) -> Self {
        #[cfg(unix)]
        {
            Self { file }
        }
        #[cfg(not(unix))]
        {
            Self {
                file: Mutex::new(file),
            }
        }
    }

    /// Read exactly `buf.len()` bytes at `offset`.
    pub(crate) fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = lock(&self.file);
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(buf)
        }
    }

    /// Write all of `buf` at `offset` (the adaptive-placement migration
    /// path appends to shard files through this).
    pub(crate) fn write_all_at(&self, buf: &[u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.write_all_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = lock(&self.file);
            f.seek(SeekFrom::Start(offset))?;
            f.write_all(buf)
        }
    }
}

/// Simulated-bandwidth clock for one spill device (shard). Readers reserve
/// an interval on the device timeline and sleep until their reservation
/// completes, so concurrent readers of one device share its bandwidth
/// (the aggregate never exceeds `mbps`) while readers of other devices
/// are unaffected. The delay is accounted per-shard with no lock held.
/// Under the async engines the *IO thread* holds the reservation, so the
/// visitor's compute overlaps the simulated device time.
#[derive(Debug, Default)]
pub(crate) struct BandwidthClock {
    /// Device busy-until, in nanoseconds since the store's epoch.
    busy_until_ns: AtomicU64,
}

impl BandwidthClock {
    pub(crate) fn charge(&self, epoch: Instant, len: usize, mbps: f64, stats: &IoStats) {
        let delay_ns = (len as f64 / (mbps * 1e6) * 1e9) as u64;
        let now = epoch.elapsed().as_nanos() as u64;
        let mut cur = self.busy_until_ns.load(Ordering::Relaxed);
        let deadline = loop {
            let deadline = cur.max(now) + delay_ns;
            match self.busy_until_ns.compare_exchange_weak(
                cur,
                deadline,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break deadline,
                Err(seen) => cur = seen,
            }
        };
        stats.throttle_ns.fetch_add(delay_ns, Ordering::Relaxed);
        if deadline > now {
            std::thread::sleep(Duration::from_nanos(deadline - now));
        }
    }
}

/// Simulated bandwidth profile for one spill device. The store applies
/// one per shard ([`crate::store::StoreConfig::with_shard_profiles`], or
/// [`crate::testing::FaultPlan::device_profiles`] for the test harness),
/// which is how heterogeneous storage tiers — a fast NVMe shard next to
/// slow network volumes — enter the device model that the adaptive
/// placement planner then has to discover at runtime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Simulated read bandwidth for this device, in MB/s.
    pub mbps: f64,
    /// Fraction of the current bandwidth lost after each physical read
    /// (`0.0` = stable device). Models a degrading/oversubscribed device:
    /// the planner must notice the EWMA falling and migrate away.
    pub degrade: f64,
}

impl DeviceProfile {
    /// A stable device at `mbps`.
    pub fn stable(mbps: f64) -> Self {
        assert!(mbps.is_finite() && mbps > 0.0, "mbps must be > 0");
        Self { mbps, degrade: 0.0 }
    }

    /// A device that starts at `mbps` and loses `degrade` (in `[0, 1)`)
    /// of its remaining bandwidth per read, floored at
    /// [`DEGRADE_FLOOR_MBPS`].
    pub fn degrading(mbps: f64, degrade: f64) -> Self {
        assert!(mbps.is_finite() && mbps > 0.0, "mbps must be > 0");
        assert!((0.0..1.0).contains(&degrade), "degrade must be in [0,1)");
        Self { mbps, degrade }
    }
}

/// Lower bound a degrading device's bandwidth converges to, so a long run
/// can never degrade into effectively-infinite simulated sleeps.
pub const DEGRADE_FLOOR_MBPS: f64 = 1.0;

/// One spill device: a positional-read file plus its bandwidth clock and
/// optional per-device bandwidth profile (overrides the store-wide
/// `disk_mbps` when set; mutable so degrading profiles can decay).
#[derive(Debug)]
pub(crate) struct SpillDevice {
    pub(crate) file: SpillFile,
    pub(crate) clock: BandwidthClock,
    /// Current per-device MB/s as f64 bits; 0 bits = no override.
    mbps_bits: AtomicU64,
    degrade: f64,
}

impl SpillDevice {
    pub(crate) fn new(file: File) -> Self {
        Self::with_profile(file, None)
    }

    pub(crate) fn with_profile(file: File, profile: Option<DeviceProfile>) -> Self {
        Self {
            file: SpillFile::new(file),
            clock: BandwidthClock::default(),
            mbps_bits: AtomicU64::new(profile.map_or(0, |p| p.mbps.to_bits())),
            degrade: profile.map_or(0.0, |p| p.degrade),
        }
    }

    /// The bandwidth this device currently simulates: its own profile if
    /// one was set, else the store-wide fallback, else none (raw IO).
    pub(crate) fn current_mbps(&self, fallback: Option<f64>) -> Option<f64> {
        match self.mbps_bits.load(Ordering::Relaxed) {
            0 => fallback,
            bits => Some(f64::from_bits(bits)),
        }
    }

    /// Apply the degrading profile after one physical read.
    pub(crate) fn degrade_after_read(&self) {
        if self.degrade <= 0.0 {
            return;
        }
        let bits = self.mbps_bits.load(Ordering::Relaxed);
        if bits == 0 {
            return;
        }
        let next = (f64::from_bits(bits) * (1.0 - self.degrade)).max(DEGRADE_FLOOR_MBPS);
        // Racing decays may lose one step; the decay is monotone either way.
        self.mbps_bits.store(next.to_bits(), Ordering::Relaxed);
    }
}

/// EWMA smoothing factor for [`BandwidthProfile`]: heavy enough that a
/// device going slow mid-run shows up within a handful of reads, light
/// enough that one queueing hiccup doesn't flip the placement plan.
const PROFILE_ALPHA: f64 = 0.25;

/// Runtime per-shard bandwidth estimates: every physical read charges its
/// observed throughput (bytes over wall time, *including* the simulated
/// bandwidth-clock delay and any queueing behind other readers of the
/// same device) into a per-shard EWMA. This is the measured signal the
/// adaptive placement planner packs hot batches by — storage tiers are
/// profiled, not assumed.
#[derive(Debug, Default)]
pub struct BandwidthProfile {
    /// Per-shard `(ewma bytes/sec as f64 bits, sample count)`.
    cells: Vec<(AtomicU64, AtomicU64)>,
}

impl BandwidthProfile {
    pub(crate) fn new(shards: usize) -> Self {
        Self {
            cells: (0..shards)
                .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Charge one observed read of `len` bytes that took `elapsed`.
    pub(crate) fn observe(&self, shard: usize, len: usize, elapsed: Duration) {
        let Some((ewma, samples)) = self.cells.get(shard) else {
            return;
        };
        let bps = len as f64 / elapsed.as_secs_f64().max(1e-9);
        let mut cur = ewma.load(Ordering::Relaxed);
        loop {
            let next = if samples.load(Ordering::Relaxed) == 0 {
                bps
            } else {
                PROFILE_ALPHA * bps + (1.0 - PROFILE_ALPHA) * f64::from_bits(cur)
            };
            match ewma.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Estimated bandwidth of `shard` in MB/s; `None` until the shard has
    /// been observed at least once.
    pub fn estimate_mbps(&self, shard: usize) -> Option<f64> {
        let (ewma, samples) = self.cells.get(shard)?;
        if samples.load(Ordering::Relaxed) == 0 {
            return None;
        }
        Some(f64::from_bits(ewma.load(Ordering::Relaxed)) / 1e6)
    }

    /// Number of observed reads for `shard`.
    pub fn samples(&self, shard: usize) -> u64 {
        self.cells
            .get(shard)
            .map_or(0, |(_, s)| s.load(Ordering::Relaxed))
    }

    /// Per-shard estimates in MB/s (`0.0` for never-observed shards).
    pub fn snapshot_mbps(&self) -> Vec<f64> {
        (0..self.cells.len())
            .map(|s| self.estimate_mbps(s).unwrap_or(0.0))
            .collect()
    }
}

/// The shared spill-device context every read path goes through: the
/// shard files, the bandwidth model, the runtime bandwidth profiler, and
/// the store's [`IoStats`]. Both the synchronous paths and the
/// [`SpillIo`] engines read exclusively via [`IoShards::read_range`], so
/// the throttle model, the profiler, and the accounting can never drift
/// apart between them.
pub(crate) struct IoShards {
    pub(crate) devices: Vec<SpillDevice>,
    pub(crate) disk_mbps: Option<f64>,
    pub(crate) epoch: Instant,
    pub(crate) stats: IoStats,
    pub(crate) profile: BandwidthProfile,
}

impl IoShards {
    pub(crate) fn new(devices: Vec<SpillDevice>, disk_mbps: Option<f64>) -> Self {
        let profile = BandwidthProfile::new(devices.len());
        Self {
            devices,
            disk_mbps,
            epoch: Instant::now(),
            stats: IoStats::default(),
            profile,
        }
    }

    /// Read `len` raw bytes at `offset` of `shard` into `buf` (cleared and
    /// resized): positional read, bandwidth charge, stats accounting, and
    /// an observed-throughput sample into the [`BandwidthProfile`].
    pub(crate) fn read_range(
        &self,
        shard: usize,
        offset: u64,
        len: usize,
        buf: &mut Vec<u8>,
    ) -> std::io::Result<()> {
        let t0 = Instant::now();
        buf.clear();
        buf.resize(len, 0);
        self.devices[shard].file.read_exact_at(buf, offset)?;
        self.account_read(shard, len, t0);
        Ok(())
    }

    /// Post-read accounting shared by every read path (this module's
    /// [`IoShards::read_range`] and the fault double's chunked partial
    /// reads): the bandwidth-clock charge plus degradation step, the
    /// `disk_reads`/`bytes_read` counters, and the profiler observation
    /// for one physical read of `len` bytes that started at `t0`. Keeping
    /// this in one place is what makes "the throttle model, the profiler
    /// and the accounting can never drift apart" true.
    pub(crate) fn account_read(&self, shard: usize, len: usize, t0: Instant) {
        let dev = &self.devices[shard];
        if let Some(mbps) = dev.current_mbps(self.disk_mbps) {
            dev.clock.charge(self.epoch, len, mbps, &self.stats);
            dev.degrade_after_read();
        }
        self.stats.disk_reads.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_read
            .fetch_add(len as u64, Ordering::Relaxed);
        self.profile.observe(shard, len, t0.elapsed());
    }
}

// ---------------------------------------------------------------------------
// IO statistics.

/// Number of power-of-two completion-latency buckets ([`LatencyHistogram`]).
pub const LATENCY_BUCKETS: usize = 16;

/// Lock-free log2 histogram of submit→complete latencies in microseconds:
/// bucket `b` counts completions in `[2^(b-1), 2^b)` µs (bucket 0 is
/// `< 1 µs`, the last bucket is open-ended).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let b = if us == 0 {
            0
        } else {
            (64 - us.leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
        };
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> [u64; LATENCY_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// Upper bound of latency bucket `b` in microseconds.
pub fn latency_bucket_upper_us(b: usize) -> u64 {
    1u64 << b
}

/// Cumulative IO statistics (updated on every spilled read/submission).
///
/// All counters are independent relaxed atomics: a [`IoStats::snapshot`]
/// taken mid-run can observe them at slightly different instants (e.g. a
/// read whose `disk_reads` increment is visible but whose `bytes_read`
/// is not yet). [`IoStats::snapshot_stable`] retries until two
/// back-to-back snapshots agree, which converges immediately whenever
/// the store is quiescent and bounds the skew to one in-flight update
/// otherwise. Counters that are only ever touched by the visiting thread
/// itself (`spill_requests`, `prefetch_hits`, `prefetch_misses`) are
/// exact the moment every visit has returned — the stress and
/// fault-injection suites assert `hits + misses == spill_requests`
/// ([`IoSnapshot::assert_consistent`]).
#[derive(Debug, Default)]
pub struct IoStats {
    /// Physical spill reads performed (a coalesced ring read counts once).
    pub disk_reads: AtomicU64,
    /// Bytes read from spill files.
    pub bytes_read: AtomicU64,
    /// Spilled visits served by the prefetch pipeline (the batch was
    /// already decoded, or its read was in flight and overlapped compute).
    pub prefetch_hits: AtomicU64,
    /// Spilled visits that found no prefetch slot and read synchronously.
    pub prefetch_misses: AtomicU64,
    /// Spilled visits requested through the prefetch pipeline; every one
    /// resolves to exactly one hit or miss by the time `visit` returns.
    pub spill_requests: AtomicU64,
    /// Simulated bandwidth delay accounted against the shard clocks, in
    /// nanoseconds (see [`crate::store::StoreConfig::disk_mbps`]).
    pub throttle_ns: AtomicU64,
    /// Requests submitted to an async [`SpillIo`] engine.
    pub submitted: AtomicU64,
    /// Completions surfaced by an async [`SpillIo`] engine.
    pub completed: AtomicU64,
    /// Requests that rode along a coalesced ring read instead of costing
    /// their own physical read.
    pub coalesced_reads: AtomicU64,
    /// Submitted-but-not-completed requests right now (gauge).
    pub in_flight: AtomicU64,
    /// High-water mark of `in_flight`.
    pub max_in_flight: AtomicU64,
    /// Spilled tenant visits served from the shared compressed-batch
    /// cache ([`crate::serve::BatchCache`]) — no physical read, no
    /// prefetch request.
    pub cache_hits: AtomicU64,
    /// Spilled tenant visits that missed the shared cache and paid a
    /// direct physical read (each one increments `disk_reads` too).
    pub cache_misses: AtomicU64,
    /// Nanoseconds tenant jobs spent blocked on per-job IO-share QoS
    /// throttling (disjoint from the device-model `throttle_ns`).
    pub qos_throttle_ns: AtomicU64,
    /// Nanoseconds the streaming-ingest producer spent blocked on the
    /// bounded sealed-chunk budget
    /// ([`crate::store::StoreConfig::with_max_pending`]) waiting for a
    /// consumer to drain appended segments — the backpressure stall
    /// signal, disjoint from every read-side counter above.
    pub ingest_stall_ns: AtomicU64,
    /// Submit→complete latency distribution for async requests.
    pub latency: LatencyHistogram,
}

impl IoStats {
    /// Point-in-time copy of all counters. Each counter is read once with
    /// relaxed ordering; see the type docs for the (bounded) skew a
    /// mid-run snapshot can observe.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            disk_reads: self.disk_reads.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            prefetch_hits: self.prefetch_hits.load(Ordering::Relaxed),
            prefetch_misses: self.prefetch_misses.load(Ordering::Relaxed),
            spill_requests: self.spill_requests.load(Ordering::Relaxed),
            throttle_ns: self.throttle_ns.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            coalesced_reads: self.coalesced_reads.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            max_in_flight: self.max_in_flight.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            qos_throttle_ns: self.qos_throttle_ns.load(Ordering::Relaxed),
            ingest_stall_ns: self.ingest_stall_ns.load(Ordering::Relaxed),
            latency_us: self.latency.snapshot(),
        }
    }

    /// Seqlock-style stable snapshot: re-read until two consecutive
    /// snapshots agree (bounded retries). At quiescence the first retry
    /// already agrees; under concurrent writers this still bounds the
    /// cross-counter skew to whatever changed during one read pass.
    pub fn snapshot_stable(&self) -> IoSnapshot {
        let mut prev = self.snapshot();
        for _ in 0..64 {
            let cur = self.snapshot();
            if cur == prev {
                return cur;
            }
            prev = cur;
        }
        prev
    }

    pub(crate) fn record_submit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let cur = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_in_flight.fetch_max(cur, Ordering::Relaxed);
    }

    pub(crate) fn record_complete(&self, submitted_at: Instant) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.latency.record(submitted_at.elapsed());
    }
}

/// Plain-value copy of [`IoStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    pub disk_reads: u64,
    pub bytes_read: u64,
    pub prefetch_hits: u64,
    pub prefetch_misses: u64,
    pub spill_requests: u64,
    pub throttle_ns: u64,
    pub submitted: u64,
    pub completed: u64,
    pub coalesced_reads: u64,
    pub in_flight: u64,
    pub max_in_flight: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub qos_throttle_ns: u64,
    pub ingest_stall_ns: u64,
    pub latency_us: [u64; LATENCY_BUCKETS],
}

impl IoSnapshot {
    /// Approximate latency percentile (`p` in 0..=100): the upper bound of
    /// the bucket containing that quantile, in microseconds. 0 when no
    /// async completions were recorded, and 0 when the quantile lands in
    /// bucket 0 (sub-microsecond completions): reporting bucket 0's upper
    /// bound would claim `1 µs` of latency for a histogram that only ever
    /// saw reads faster than the histogram can resolve.
    pub fn latency_percentile_us(&self, p: u64) -> u64 {
        let total: u64 = self.latency_us.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = (total * p).div_ceil(100).max(1);
        let mut seen = 0;
        for (b, &n) in self.latency_us.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if b == 0 {
                    0
                } else {
                    latency_bucket_upper_us(b)
                };
            }
        }
        latency_bucket_upper_us(LATENCY_BUCKETS - 1)
    }

    /// Assert the cross-counter invariants that must hold once every
    /// visit has returned (quiescent or not — these counters are only
    /// written by the visiting threads themselves): every prefetch-path
    /// request resolved to exactly one hit or miss. The engine-side
    /// counters must satisfy `completed <= submitted` and physical reads
    /// plus coalesced riders must cover every completion *and* every
    /// shared-cache miss: a tenant cache miss pays its own direct read
    /// (outside the engine), so a cache-served read that also charged the
    /// prefetch pipeline — or a miss that never reached the device —
    /// shows up here as double- or under-counting.
    #[track_caller]
    pub fn assert_consistent(&self) {
        assert_eq!(
            self.prefetch_hits + self.prefetch_misses,
            self.spill_requests,
            "prefetch hit/miss accounting diverged from requests: {self:?}"
        );
        assert!(
            self.completed <= self.submitted,
            "more completions than submissions: {self:?}"
        );
        assert!(
            self.disk_reads + self.coalesced_reads >= self.completed + self.cache_misses,
            "completions + cache misses not covered by physical+coalesced reads: {self:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// The SpillIo submission/completion seam.

/// Engine selector threaded through `StoreConfig` and `toc train --io`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IoEngineKind {
    /// No engine: prefetch workers read synchronously (read latency
    /// serializes with decode inside each worker — the PR 2 behavior).
    #[default]
    Sync,
    /// Portable worker-pool backend ([`PoolIo`]).
    Pool,
    /// Batched per-shard backend with adjacent-read coalescing ([`RingIo`]).
    Ring,
}

impl IoEngineKind {
    pub fn name(self) -> &'static str {
        match self {
            IoEngineKind::Sync => "sync",
            IoEngineKind::Pool => "pool",
            IoEngineKind::Ring => "ring",
        }
    }
}

impl std::fmt::Display for IoEngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for IoEngineKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sync" => Ok(IoEngineKind::Sync),
            "pool" => Ok(IoEngineKind::Pool),
            "ring" => Ok(IoEngineKind::Ring),
            other => Err(format!("unknown io engine {other:?} (sync|pool|ring)")),
        }
    }
}

// ---------------------------------------------------------------------------
// Affinity-aware scheduling of IO threads and decode workers.

/// How shards are pinned to IO threads and how decode workers drain
/// completions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Pinning {
    /// No affinity: ring threads still own shard inboxes (inherent to the
    /// ring design), but completions funnel through one shared queue that
    /// any decode worker may drain — the pre-affinity behavior.
    #[default]
    Off,
    /// Stable automatic affinity: shard `s` routes to ring thread
    /// `s % io_threads`, and completions stripe into per-decode-worker
    /// lanes by `shard % lanes`, so a given shard's batches always decode
    /// on the same worker (warm scratch, no cross-worker contention).
    Auto,
    /// Explicit shard→IO-thread map: entry `s` names the ring thread that
    /// serves shard `s`. Must cover every shard with thread indices below
    /// `io_threads`; validated at store build. Completions stripe as in
    /// `Auto`.
    Fixed(Vec<usize>),
}

impl Pinning {
    pub fn name(&self) -> &'static str {
        match self {
            Pinning::Off => "off",
            Pinning::Auto => "auto",
            Pinning::Fixed(_) => "fixed",
        }
    }
}

/// Scheduling knobs for the prefetch pipeline's IO threads and decode
/// workers, threaded through `StoreConfig` and `toc train
/// --io-threads/--decode-workers/--pin/--pin-map`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// IO threads for the async engines (`0` = auto: the prefetch depth
    /// for the pool engine, one per shard for the ring engine; both
    /// clamped to [`MAX_IO_THREADS`]).
    pub io_threads: usize,
    /// Decode workers draining completions (`0` = auto: the prefetch
    /// depth, clamped to the worker cap).
    pub decode_workers: usize,
    /// Shard→IO-thread affinity and completion-lane striping.
    pub pinning: Pinning,
}

impl SchedulerConfig {
    /// Resolved IO thread count for `kind` over `shards` shard devices at
    /// prefetch depth `depth`.
    pub(crate) fn resolved_io_threads(
        &self,
        kind: IoEngineKind,
        shards: usize,
        depth: usize,
    ) -> usize {
        let auto = match kind {
            IoEngineKind::Ring => shards,
            _ => depth,
        };
        let chosen = if self.io_threads > 0 {
            self.io_threads
        } else {
            auto
        };
        chosen.clamp(1, MAX_IO_THREADS)
    }

    /// Resolved decode-worker count at prefetch depth `depth` (the cap is
    /// shared with the sync prefetch workers).
    pub(crate) fn resolved_decode_workers(&self, depth: usize, cap: usize) -> usize {
        let chosen = if self.decode_workers > 0 {
            self.decode_workers
        } else {
            depth
        };
        chosen.clamp(1, cap)
    }

    /// Completion lanes for `decode_workers` workers over `shards` shards:
    /// one shared lane when pinning is off, else one lane per worker —
    /// but never more lanes than shards, or lanes `shard % lanes` can
    /// never route to would starve their workers.
    pub(crate) fn completion_lanes(&self, decode_workers: usize, shards: usize) -> usize {
        match self.pinning {
            Pinning::Off => 1,
            _ => decode_workers.min(shards).max(1),
        }
    }

    /// The stable shard→ring-thread assignment: `s % threads` for
    /// off/auto, the user's map for fixed (validated: exactly one entry
    /// per shard, every entry below `threads`).
    pub(crate) fn ring_assignment(
        &self,
        shards: usize,
        threads: usize,
    ) -> Result<Vec<usize>, String> {
        match &self.pinning {
            Pinning::Off | Pinning::Auto => Ok((0..shards).map(|s| s % threads).collect()),
            Pinning::Fixed(map) => {
                if map.len() != shards {
                    return Err(format!(
                        "pin map covers {} shards but the store has {shards}",
                        map.len()
                    ));
                }
                if let Some(&bad) = map.iter().find(|&&t| t >= threads) {
                    return Err(format!(
                        "pin map routes a shard to IO thread {bad}, but only {threads} \
                         IO threads exist"
                    ));
                }
                Ok(map.clone())
            }
        }
    }
}

/// One read request: `len` bytes at `offset` of shard `shard`.
#[derive(Clone, Copy, Debug)]
pub struct SpillRequest {
    pub shard: usize,
    pub offset: u64,
    pub len: usize,
}

/// Engine-assigned request id, echoed by the matching [`Completion`].
pub type Ticket = u64;

/// A finished read: the caller's buffer back (filled on success) plus the
/// IO result. Completions surface in whatever order reads finish —
/// consumers must route by `ticket`, never by submission order.
#[derive(Debug)]
pub struct Completion {
    pub ticket: Ticket,
    pub shard: usize,
    pub buf: Vec<u8>,
    pub result: std::io::Result<()>,
}

/// The async spill-IO seam: submit positional reads, harvest completions
/// out of order. All engines are `Send + Sync`; any number of threads may
/// submit and complete concurrently.
pub trait SpillIo: Send + Sync {
    /// Queue a read. `buf` is recycled through the completion (resized to
    /// `req.len`), so steady-state submission allocates nothing.
    fn submit(&self, req: SpillRequest, buf: Vec<u8>) -> Ticket;

    /// Block until a completion is available or the engine shuts down
    /// (`None`). Concurrent callers each receive distinct completions.
    /// Engines with striped completion lanes serve lane 0 here; use
    /// [`SpillIo::complete_on`] to drain a specific lane.
    fn complete(&self) -> Option<Completion>;

    /// Lane-affine completion harvest: with striped lanes
    /// ([`SchedulerConfig`] pinning on), completions route to lane
    /// `shard % lanes` and decode worker `w` drains lane `w` — a shard's
    /// batches always decode on the same worker. Engines without lanes
    /// fall back to the shared queue.
    fn complete_on(&self, _lane: usize) -> Option<Completion> {
        self.complete()
    }

    /// Wake every blocked `complete` caller and stop the IO threads.
    /// Queued-but-unserved submissions are dropped.
    fn shutdown(&self);

    /// Submitted-but-not-completed request count (gauge).
    fn in_flight(&self) -> usize;
}

/// Completion queue shared by the engine implementations: a condvar-woken
/// deque plus the shutdown latch.
pub(crate) struct CompletionQueue {
    q: Mutex<(VecDeque<Completion>, bool)>,
    cv: Condvar,
}

impl CompletionQueue {
    pub(crate) fn new() -> Self {
        Self {
            q: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn push(&self, c: Completion) {
        lock(&self.q).0.push_back(c);
        self.cv.notify_one();
    }

    pub(crate) fn pop(&self) -> Option<Completion> {
        let mut g = lock(&self.q);
        loop {
            if let Some(c) = g.0.pop_front() {
                return Some(c);
            }
            if g.1 {
                return None;
            }
            g = wait(&self.cv, g);
        }
    }

    pub(crate) fn shut_down(&self) {
        lock(&self.q).1 = true;
        self.cv.notify_all();
    }

    pub(crate) fn is_shut_down(&self) -> bool {
        lock(&self.q).1
    }
}

/// Striped completion queues: completions route to lane `shard % lanes`
/// so each decode worker drains a stable subset of shards. One lane
/// degenerates to the shared-queue behavior.
pub(crate) struct CompletionLanes {
    lanes: Vec<CompletionQueue>,
}

impl CompletionLanes {
    pub(crate) fn new(lanes: usize) -> Self {
        Self {
            lanes: (0..lanes.max(1)).map(|_| CompletionQueue::new()).collect(),
        }
    }

    pub(crate) fn push(&self, c: Completion) {
        self.lanes[c.shard % self.lanes.len()].push(c);
    }

    pub(crate) fn pop_lane(&self, lane: usize) -> Option<Completion> {
        self.lanes[lane % self.lanes.len()].pop()
    }

    pub(crate) fn shut_down(&self) {
        for l in &self.lanes {
            l.shut_down();
        }
    }

    pub(crate) fn is_shut_down(&self) -> bool {
        self.lanes[0].is_shut_down()
    }
}

// ---------------------------------------------------------------------------
// Shared submission plumbing.

pub(crate) struct Submission {
    pub(crate) ticket: Ticket,
    pub(crate) req: SpillRequest,
    pub(crate) buf: Vec<u8>,
    pub(crate) at: Instant,
}

/// Central submission queue shared by the pool engine and the
/// fault-injection double: ticket assignment, `IoStats` accounting, and
/// condvar wakeup live in exactly one place, so the test double can never
/// drift from the production submission contract.
pub(crate) struct SubmissionQueue {
    q: Mutex<VecDeque<Submission>>,
    cv: Condvar,
    next_ticket: AtomicU64,
}

impl SubmissionQueue {
    pub(crate) fn new() -> Self {
        Self {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            next_ticket: AtomicU64::new(0),
        }
    }

    /// Assign a ticket, account the submission, enqueue, wake one worker.
    pub(crate) fn submit(&self, io: &IoShards, req: SpillRequest, buf: Vec<u8>) -> Ticket {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        io.stats.record_submit();
        lock(&self.q).push_back(Submission {
            ticket,
            req,
            buf,
            at: Instant::now(),
        });
        self.cv.notify_one();
        ticket
    }

    /// Non-blocking pop.
    pub(crate) fn try_pop(&self) -> Option<Submission> {
        lock(&self.q).pop_front()
    }

    /// Block until a submission arrives or `shut_down()` returns true.
    pub(crate) fn pop_wait(&self, shut_down: impl Fn() -> bool) -> Option<Submission> {
        let mut g = lock(&self.q);
        loop {
            if shut_down() {
                return None;
            }
            if let Some(s) = g.pop_front() {
                return Some(s);
            }
            g = wait(&self.cv, g);
        }
    }

    /// Sleep until new work arrives or `timeout` elapses (spurious wakeups
    /// allowed; callers loop).
    pub(crate) fn wait_briefly(&self, timeout: Duration) {
        let g = lock(&self.q);
        if g.is_empty() {
            let _ = self
                .cv
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Wake every blocked `pop_wait` caller (shutdown path).
    pub(crate) fn notify_all(&self) {
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// PoolIo: the portable worker-pool backend.

struct PoolShared {
    io: Arc<IoShards>,
    subq: SubmissionQueue,
    comp: CompletionLanes,
}

/// Portable worker-pool [`SpillIo`] backend: N threads pull submissions
/// off a central queue and serve them with positional reads. Reads of
/// different shards proceed fully in parallel; reads of one shard share
/// its bandwidth clock. Completion order is read-finish order; with
/// `lanes > 1` completions stripe into per-decode-worker lanes by shard.
pub struct PoolIo {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

pub(crate) const MAX_IO_THREADS: usize = 8;

impl PoolIo {
    pub(crate) fn start(io: Arc<IoShards>, workers: usize, lanes: usize) -> Self {
        let shared = Arc::new(PoolShared {
            io,
            subq: SubmissionQueue::new(),
            comp: CompletionLanes::new(lanes),
        });
        let threads = (0..workers.clamp(1, MAX_IO_THREADS))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker(&shared))
            })
            .collect();
        Self { shared, threads }
    }

    fn worker(shared: &PoolShared) {
        while let Some(sub) = shared.subq.pop_wait(|| shared.comp.is_shut_down()) {
            let Submission {
                ticket,
                req,
                mut buf,
                at,
            } = sub;
            let result = shared
                .io
                .read_range(req.shard, req.offset, req.len, &mut buf);
            shared.io.stats.record_complete(at);
            shared.comp.push(Completion {
                ticket,
                shard: req.shard,
                buf,
                result,
            });
        }
    }
}

impl SpillIo for PoolIo {
    fn submit(&self, req: SpillRequest, buf: Vec<u8>) -> Ticket {
        self.shared.subq.submit(&self.shared.io, req, buf)
    }

    fn complete(&self) -> Option<Completion> {
        self.shared.comp.pop_lane(0)
    }

    fn complete_on(&self, lane: usize) -> Option<Completion> {
        self.shared.comp.pop_lane(lane)
    }

    fn shutdown(&self) {
        self.shared.comp.shut_down();
        self.shared.subq.notify_all();
    }

    fn in_flight(&self) -> usize {
        self.shared.io.stats.in_flight.load(Ordering::Relaxed) as usize
    }
}

impl Drop for PoolIo {
    fn drop(&mut self) {
        self.shutdown();
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// RingIo: batched per-shard queues with adjacent-read coalescing.

struct RingShared {
    io: Arc<IoShards>,
    /// One inbox per ring thread; shard `s` routes to inbox `assign[s]`.
    inboxes: Vec<(Mutex<Vec<Submission>>, Condvar)>,
    /// Stable shard→ring-thread assignment ([`SchedulerConfig`]).
    assign: Vec<usize>,
    comp: CompletionLanes,
    next_ticket: AtomicU64,
}

/// Batched "ring" [`SpillIo`] backend. Submissions route to per-thread
/// inboxes through a **stable shard→thread assignment** (automatic
/// `s % threads` or a user pin map); each ring thread drains its inbox
/// in bursts, groups the burst by shard, sorts each group by file offset
/// and **coalesces adjacent ranges into one physical read** (one
/// bandwidth-clock charge for the merged length), then completes the
/// members out of order. A burst of K lookahead submissions over
/// contiguously-placed batches (`ShardPlacement::Pack`) thus costs a
/// handful of large reads instead of K small ones.
pub struct RingIo {
    shared: Arc<RingShared>,
    threads: Vec<JoinHandle<()>>,
}

impl RingIo {
    /// Start with `threads` ring threads, the given shard→thread
    /// assignment (every entry must be `< threads`; validated by
    /// [`SchedulerConfig::ring_assignment`]) and `lanes` completion lanes.
    pub(crate) fn start(
        io: Arc<IoShards>,
        threads: usize,
        assign: Vec<usize>,
        lanes: usize,
    ) -> Self {
        let n_threads = threads.max(1);
        debug_assert!(assign.iter().all(|&t| t < n_threads));
        let shared = Arc::new(RingShared {
            io,
            inboxes: (0..n_threads)
                .map(|_| (Mutex::new(Vec::new()), Condvar::new()))
                .collect(),
            assign,
            comp: CompletionLanes::new(lanes),
            next_ticket: AtomicU64::new(0),
        });
        let threads = (0..n_threads)
            .map(|t| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::ring_thread(&shared, t))
            })
            .collect();
        Self { shared, threads }
    }

    /// The pre-affinity default: one thread per shard device (capped),
    /// automatic assignment, a single shared completion lane.
    #[cfg(test)]
    pub(crate) fn start_default(io: Arc<IoShards>) -> Self {
        let threads = io.devices.len().clamp(1, MAX_IO_THREADS);
        let assign = (0..io.devices.len()).map(|s| s % threads).collect();
        Self::start(io, threads, assign, 1)
    }

    fn ring_thread(shared: &RingShared, t: usize) {
        // Reusable staging for coalesced reads: the merged range lands
        // here once, then splits into the members' recycled buffers — no
        // per-burst allocation in steady state.
        let mut merged = Vec::new();
        loop {
            // Drain the whole inbox in one burst — the batching window.
            let mut burst = {
                let (m, cv) = &shared.inboxes[t];
                let mut g = lock(m);
                loop {
                    if shared.comp.is_shut_down() {
                        return;
                    }
                    if !g.is_empty() {
                        break std::mem::take(&mut *g);
                    }
                    g = wait(cv, g);
                }
            };
            // Group by shard, then serve each group offset-sorted with
            // adjacent ranges merged into one read.
            for r in plan_runs(&mut burst) {
                Self::serve_run(shared, &mut burst[r], &mut merged);
            }
            // Return the burst members' buffers through completions; the
            // drained Vec itself is dropped (its capacity is tiny).
        }
    }

    /// Serve one maximal run of same-shard, file-adjacent requests
    /// (one range from [`plan_runs`]): a single physical read of the
    /// merged range, split back into the members' buffers. A run of one
    /// degenerates to a plain read.
    fn serve_run(shared: &RingShared, run: &mut [Submission], merged: &mut Vec<u8>) {
        let shard = run[0].req.shard;
        let base = run[0].req.offset;
        let merged_len: usize = run.iter().map(|s| s.req.len).sum();
        let io = &shared.io;
        if run.len() == 1 {
            let Submission { req, .. } = run[0];
            let mut buf = std::mem::take(&mut run[0].buf);
            let result = io.read_range(req.shard, req.offset, req.len, &mut buf);
            io.stats.record_complete(run[0].at);
            shared.comp.push(Completion {
                ticket: run[0].ticket,
                shard,
                buf,
                result,
            });
            return;
        }
        // One physical read for the whole run, staged through the ring
        // thread's reusable buffer (read_range clears and resizes it).
        let result = io.read_range(shard, base, merged_len, merged);
        io.stats
            .coalesced_reads
            .fetch_add(run.len() as u64 - 1, Ordering::Relaxed);
        let mut cursor = 0usize;
        for sub in run.iter_mut() {
            let mut buf = std::mem::take(&mut sub.buf);
            let member_result = match &result {
                Ok(()) => {
                    buf.clear();
                    buf.extend_from_slice(&merged[cursor..cursor + sub.req.len]);
                    Ok(())
                }
                Err(e) => Err(std::io::Error::new(e.kind(), e.to_string())),
            };
            cursor += sub.req.len;
            io.stats.record_complete(sub.at);
            shared.comp.push(Completion {
                ticket: sub.ticket,
                shard,
                buf,
                result: member_result,
            });
        }
    }
}

/// The ring engine's batching plan, separated from serving so it can be
/// tested deterministically (whether adjacent requests actually land in
/// one burst is scheduling-dependent; what a burst merges into is not):
/// sort a drained burst by `(shard, offset)` and return the maximal runs
/// of same-shard, file-adjacent requests as index ranges into the sorted
/// burst.
fn plan_runs(burst: &mut [Submission]) -> Vec<std::ops::Range<usize>> {
    burst.sort_by_key(|s| (s.req.shard, s.req.offset));
    let mut runs = Vec::new();
    let mut i = 0;
    while i < burst.len() {
        let shard = burst[i].req.shard;
        let start = i;
        let mut end_off = burst[i].req.offset + burst[i].req.len as u64;
        i += 1;
        while i < burst.len() && burst[i].req.shard == shard && burst[i].req.offset == end_off {
            end_off += burst[i].req.len as u64;
            i += 1;
        }
        runs.push(start..i);
    }
    runs
}

impl SpillIo for RingIo {
    fn submit(&self, req: SpillRequest, buf: Vec<u8>) -> Ticket {
        let ticket = self.shared.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.shared.io.stats.record_submit();
        let t = self
            .shared
            .assign
            .get(req.shard)
            .copied()
            .unwrap_or(req.shard % self.shared.inboxes.len());
        let (m, cv) = &self.shared.inboxes[t];
        lock(m).push(Submission {
            ticket,
            req,
            buf,
            at: Instant::now(),
        });
        cv.notify_one();
        ticket
    }

    fn complete(&self) -> Option<Completion> {
        self.shared.comp.pop_lane(0)
    }

    fn complete_on(&self, lane: usize) -> Option<Completion> {
        self.shared.comp.pop_lane(lane)
    }

    fn shutdown(&self) {
        self.shared.comp.shut_down();
        for (_, cv) in &self.shared.inboxes {
            cv.notify_all();
        }
    }

    fn in_flight(&self) -> usize {
        self.shared.io.stats.in_flight.load(Ordering::Relaxed) as usize
    }
}

impl Drop for RingIo {
    fn drop(&mut self) {
        self.shutdown();
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Seekable v2 container reads.

/// A v2 `.tocz` container opened for random access.
///
/// Opening costs exactly three positional reads — header, postscript,
/// footer — and never touches segment bytes. After that, every
/// [`SeekableContainer::decode_rows`] projection reads only the segments
/// whose row ranges the footer's layout tree says intersect the query,
/// each with one positional read of exactly its byte extent (the same
/// `pread` path the spill shards use; no seek, no shared cursor, safe
/// from any number of threads). All reads are charged to an [`IoStats`]
/// owned by this handle, so callers can assert byte-precise access
/// patterns — the random-access CI gate does.
pub struct SeekableContainer {
    file: SpillFile,
    footer: toc_formats::container::Footer,
    footer_offset: u64,
    stats: IoStats,
}

impl SeekableContainer {
    /// Open `path` and parse its postscript + footer (3 positional reads).
    pub fn open(path: &std::path::Path) -> Result<Self, String> {
        use toc_formats::container as cz;
        let ctx = |e: &dyn std::fmt::Display| format!("{}: {e}", path.display());
        let f = File::open(path).map_err(|e| ctx(&e))?;
        let file_len = f.metadata().map_err(|e| ctx(&e))?.len();
        if file_len < (cz::HEADER_LEN + cz::POSTSCRIPT_LEN) as u64 {
            return Err(ctx(&"file too short for a v2 container"));
        }
        let file = SpillFile::new(f);
        let stats = IoStats::default();
        let read_at = |len: usize, offset: u64| -> Result<Vec<u8>, String> {
            let mut buf = vec![0u8; len];
            file.read_exact_at(&mut buf, offset).map_err(|e| ctx(&e))?;
            stats.disk_reads.fetch_add(1, Ordering::Relaxed);
            stats.bytes_read.fetch_add(len as u64, Ordering::Relaxed);
            Ok(buf)
        };
        let header = read_at(cz::HEADER_LEN, 0)?;
        if u32::from_le_bytes(header[0..4].try_into().unwrap()) != cz::MAGIC {
            return Err(ctx(&"bad container magic"));
        }
        if header[4] != 2 {
            return Err(ctx(&format!(
                "container version {} is not seekable (v2 required; \
                 `toc compress` writes v2 by default)",
                header[4]
            )));
        }
        let tail = read_at(cz::POSTSCRIPT_LEN, file_len - cz::POSTSCRIPT_LEN as u64)?;
        let ps = cz::Postscript::parse(&tail).map_err(|e| ctx(&e))?;
        ps.validate(file_len).map_err(|e| ctx(&e))?;
        let fbytes = read_at(ps.footer_len as usize, ps.footer_offset)?;
        if cz::fnv1a64(&fbytes) != ps.footer_checksum {
            return Err(ctx(&"footer checksum mismatch"));
        }
        let footer = cz::Footer::from_bytes(&fbytes).map_err(|e| ctx(&e))?;
        if footer.root.end > ps.footer_offset || footer.root.begin < cz::HEADER_LEN as u64 {
            return Err(ctx(&"layout tree extends outside the segment region"));
        }
        footer
            .leaves_validated(ps.footer_offset)
            .map_err(|e| ctx(&e))?;
        Ok(Self {
            file,
            footer,
            footer_offset: ps.footer_offset,
            stats,
        })
    }

    /// The parsed footer (layout tree + zone maps).
    pub fn footer(&self) -> &toc_formats::container::Footer {
        &self.footer
    }

    /// IO counters for every read this handle has performed.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    pub fn num_segments(&self) -> usize {
        self.footer.num_segments()
    }

    pub fn total_rows(&self) -> usize {
        self.footer.total_rows() as usize
    }

    pub fn cols(&self) -> usize {
        self.footer.cols as usize
    }

    /// Raw encoded bytes of segment `idx` (one positional read of exactly
    /// the segment's extent).
    pub fn read_segment_bytes(&self, idx: usize) -> Result<Vec<u8>, String> {
        let leaves = self.footer.leaves();
        let leaf = leaves
            .get(idx)
            .ok_or_else(|| format!("segment {idx} out of 0..{}", leaves.len()))?;
        let len = (leaf.end - leaf.begin) as usize;
        let mut buf = vec![0u8; len];
        self.file
            .read_exact_at(&mut buf, leaf.begin)
            .map_err(|e| format!("segment {idx}: {e}"))?;
        self.stats.disk_reads.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_read
            .fetch_add(len as u64, Ordering::Relaxed);
        Ok(buf)
    }

    /// Read and parse segment `idx`, cross-checking its shape and scheme
    /// tag against the footer.
    pub fn decode_segment(&self, idx: usize) -> Result<toc_formats::AnyBatch, String> {
        let bytes = self.read_segment_bytes(idx)?;
        let leaf = self.footer.leaves()[idx].clone();
        if bytes.first() != leaf.scheme.as_ref() {
            return Err(format!(
                "segment {idx}: scheme tag disagrees with the footer"
            ));
        }
        let batch =
            toc_formats::Scheme::from_bytes(&bytes).map_err(|e| format!("segment {idx}: {e}"))?;
        if batch.rows() as u64 != leaf.row_end - leaf.row_start || batch.cols() != self.cols() {
            return Err(format!("segment {idx}: shape disagrees with the footer"));
        }
        Ok(batch)
    }

    /// Decode rows `r0..r1`, reading only the segments the layout tree
    /// says intersect the range and trimming the partial segments at the
    /// edges.
    pub fn decode_rows(&self, r0: usize, r1: usize) -> Result<DenseMatrix, String> {
        self.decode_rows_parallel(r0, r1, 1)
    }

    /// [`SeekableContainer::decode_rows`] with the touched segments
    /// decoded by `workers` threads (1 = inline). Output is identical to
    /// the serial path; only the read/decode order varies.
    pub fn decode_rows_parallel(
        &self,
        r0: usize,
        r1: usize,
        workers: usize,
    ) -> Result<DenseMatrix, String> {
        let total = self.total_rows();
        if r0 > r1 || r1 > total {
            return Err(format!("row range {r0}..{r1} out of 0..{total}"));
        }
        let mut out = DenseMatrix::zeros(r1 - r0, self.cols());
        let segs = self.footer.segments_overlapping_rows(r0 as u64, r1 as u64);
        // Each decoded segment lands in a disjoint row band of `out`; a
        // worker returns (output row offset, trimmed rows) and the main
        // thread copies them in.
        let decode_one = |idx: usize| -> Result<(usize, DenseMatrix), String> {
            let leaf = self.footer.leaves()[idx].clone();
            let (seg_start, seg_end) = (leaf.row_start as usize, leaf.row_end as usize);
            let batch = self.decode_segment(idx)?;
            let lo = r0.max(seg_start) - seg_start;
            let hi = r1.min(seg_end) - seg_start;
            let mut part = DenseMatrix::default();
            batch.decode_rows_into(lo, hi, &mut part);
            Ok((seg_start + lo - r0, part))
        };
        let workers = workers.max(1).min(segs.len().max(1));
        let parts: Vec<Result<(usize, DenseMatrix), String>> = if workers <= 1 {
            segs.iter().map(|&i| decode_one(i)).collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let segs = &segs;
                        let decode_one = &decode_one;
                        scope.spawn(move || {
                            segs.iter()
                                .skip(w)
                                .step_by(workers)
                                .map(|&i| decode_one(i))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("decode worker panicked"))
                    .collect()
            })
        };
        for part in parts {
            let (at, rows) = part?;
            for r in 0..rows.rows() {
                out.row_mut(at + r).copy_from_slice(rows.row(r));
            }
        }
        Ok(out)
    }

    /// Total bytes of the segment region (what a decode-everything reader
    /// would fetch beyond the framing).
    pub fn payload_bytes(&self) -> u64 {
        self.footer_offset - toc_formats::container::HEADER_LEN as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::io::Write;

    /// Build an IoShards over `n_shards` temp files, each holding the
    /// given chunks laid out back to back. Returns the shard layouts
    /// (shard, offset, bytes) in write order.
    #[allow(clippy::type_complexity)]
    fn test_shards(
        n_shards: usize,
        chunks: &[(usize, Vec<u8>)],
    ) -> (
        Arc<IoShards>,
        Vec<(SpillRequest, Vec<u8>)>,
        Vec<std::path::PathBuf>,
    ) {
        let dir = std::env::temp_dir();
        let mut files = Vec::new();
        let mut paths = Vec::new();
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        for s in 0..n_shards {
            let path = dir.join(format!("toc-io-test-{}-{id}-{s}.bin", std::process::id()));
            let f = std::fs::OpenOptions::new()
                .create(true)
                .write(true)
                .read(true)
                .truncate(true)
                .open(&path)
                .unwrap();
            files.push(f);
            paths.push(path);
        }
        let mut offsets = vec![0u64; n_shards];
        let mut layout = Vec::new();
        for (shard, bytes) in chunks {
            files[*shard].write_all(bytes).unwrap();
            layout.push((
                SpillRequest {
                    shard: *shard,
                    offset: offsets[*shard],
                    len: bytes.len(),
                },
                bytes.clone(),
            ));
            offsets[*shard] += bytes.len() as u64;
        }
        let devices = files.into_iter().map(SpillDevice::new).collect();
        (Arc::new(IoShards::new(devices, None)), layout, paths)
    }

    fn chunk(shard: usize, fill: u8, len: usize) -> (usize, Vec<u8>) {
        (shard, vec![fill; len])
    }

    fn drain_and_check(engine: &dyn SpillIo, expected: &HashMap<Ticket, Vec<u8>>) {
        for _ in 0..expected.len() {
            let c = engine.complete().expect("engine shut down early");
            assert!(c.result.is_ok(), "{:?}", c.result);
            assert_eq!(&c.buf, &expected[&c.ticket], "ticket {}", c.ticket);
        }
        assert_eq!(engine.in_flight(), 0);
    }

    #[test]
    fn pool_engine_completes_all_requests_out_of_order_safe() {
        let chunks: Vec<_> = (0..10u8)
            .map(|i| chunk(i as usize % 3, i, 64 + i as usize))
            .collect();
        let (io, layout, paths) = test_shards(3, &chunks);
        let engine = PoolIo::start(Arc::clone(&io), 4, 1);
        let mut expected = HashMap::new();
        for (req, bytes) in &layout {
            let t = engine.submit(*req, Vec::new());
            expected.insert(t, bytes.clone());
        }
        drain_and_check(&engine, &expected);
        let s = io.stats.snapshot_stable();
        assert_eq!(s.submitted, 10);
        assert_eq!(s.completed, 10);
        assert_eq!(s.disk_reads, 10);
        assert!(s.max_in_flight >= 1);
        assert_eq!(s.latency_us.iter().sum::<u64>(), 10);
        drop(engine);
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn ring_engine_coalesces_adjacent_reads() {
        // 6 chunks on one shard, all adjacent: submitted in one burst
        // before the ring thread wakes they should merge into few reads.
        let chunks: Vec<_> = (0..6u8).map(|i| chunk(0, i, 128)).collect();
        let (io, layout, paths) = test_shards(1, &chunks);
        let engine = RingIo::start_default(Arc::clone(&io));
        // Hold the ring thread busy-less: submit everything in one burst
        // under no lock, then harvest. The thread drains the inbox as one
        // batch, so at least some requests must coalesce.
        let mut expected = HashMap::new();
        for (req, bytes) in &layout {
            let t = engine.submit(*req, Vec::new());
            expected.insert(t, bytes.clone());
        }
        drain_and_check(&engine, &expected);
        let s = io.stats.snapshot_stable();
        assert_eq!(s.submitted, 6);
        assert_eq!(s.completed, 6);
        // Whatever the interleaving, reads + riders covers all 6; and the
        // byte totals match exactly (coalescing must not re-read).
        assert_eq!(s.disk_reads + s.coalesced_reads, 6, "{s:?}");
        assert_eq!(s.bytes_read, 6 * 128);
        s.assert_consistent();
        drop(engine);
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn plan_runs_merges_adjacent_ranges_deterministically() {
        let sub = |shard: usize, offset: u64, len: usize| Submission {
            ticket: offset, // arbitrary
            req: SpillRequest { shard, offset, len },
            buf: Vec::new(),
            at: Instant::now(),
        };
        // Submitted out of order, across two shards, with one gap:
        // shard 0 holds [0,100), [100,250), gap, [300,350);
        // shard 1 holds [0,80), [80,160).
        let mut burst = vec![
            sub(1, 80, 80),
            sub(0, 100, 150),
            sub(0, 300, 50),
            sub(0, 0, 100),
            sub(1, 0, 80),
        ];
        let runs = plan_runs(&mut burst);
        // Sorted: (0,0) (0,100) (0,300) (1,0) (1,80) → runs of 2, 1, 2.
        assert_eq!(runs, vec![0..2, 2..3, 3..5]);
        let lens: Vec<usize> = runs
            .iter()
            .map(|r| burst[r.clone()].iter().map(|s| s.req.len).sum())
            .collect();
        assert_eq!(lens, vec![250, 50, 160]);
        // Degenerate bursts.
        assert_eq!(plan_runs(&mut []), Vec::<std::ops::Range<usize>>::new());
        assert_eq!(plan_runs(&mut [sub(2, 7, 3)]), vec![0..1]);
    }

    #[test]
    fn ring_engine_serves_interleaved_shards() {
        let chunks: Vec<_> = (0..12u8).map(|i| chunk(i as usize % 4, i, 96)).collect();
        let (io, layout, paths) = test_shards(4, &chunks);
        let engine = RingIo::start_default(Arc::clone(&io));
        let mut expected = HashMap::new();
        for (req, bytes) in &layout {
            let t = engine.submit(*req, Vec::new());
            expected.insert(t, bytes.clone());
        }
        drain_and_check(&engine, &expected);
        io.stats.snapshot_stable().assert_consistent();
        drop(engine);
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn engines_surface_read_errors_per_request() {
        let (io, layout, paths) = test_shards(1, &[chunk(0, 7, 64)]);
        let engine = PoolIo::start(Arc::clone(&io), 2, 1);
        // Past-EOF read must complete with an error, not hang or panic.
        let t_bad = engine.submit(
            SpillRequest {
                shard: 0,
                offset: 1 << 20,
                len: 32,
            },
            Vec::new(),
        );
        let t_good = engine.submit(layout[0].0, Vec::new());
        let mut seen = HashMap::new();
        for _ in 0..2 {
            let c = engine.complete().unwrap();
            seen.insert(c.ticket, c.result.is_ok());
        }
        assert!(!seen[&t_bad]);
        assert!(seen[&t_good]);
        drop(engine);
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn shutdown_wakes_blocked_completers() {
        let (io, _, paths) = test_shards(1, &[chunk(0, 1, 8)]);
        for engine in [
            Box::new(PoolIo::start(Arc::clone(&io), 2, 1)) as Box<dyn SpillIo>,
            Box::new(RingIo::start_default(Arc::clone(&io))) as Box<dyn SpillIo>,
        ] {
            let waiter = {
                let engine: &dyn SpillIo = &*engine;
                std::thread::scope(|s| {
                    let h = s.spawn(|| engine.complete().is_none());
                    std::thread::sleep(Duration::from_millis(10));
                    engine.shutdown();
                    h.join().unwrap()
                })
            };
            assert!(waiter, "complete() must return None after shutdown");
        }
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn engine_kind_parses_and_prints() {
        for (s, k) in [
            ("sync", IoEngineKind::Sync),
            ("POOL", IoEngineKind::Pool),
            ("Ring", IoEngineKind::Ring),
        ] {
            assert_eq!(s.parse::<IoEngineKind>().unwrap(), k);
            assert_eq!(k.name().parse::<IoEngineKind>().unwrap(), k);
        }
        assert!("uring".parse::<IoEngineKind>().is_err());
    }

    #[test]
    fn latency_histogram_buckets_and_percentiles() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(0));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        let snap = h.snapshot();
        assert_eq!(snap.iter().sum::<u64>(), 4);
        assert_eq!(snap[0], 1); // <1us
        assert_eq!(snap[2], 2); // [2,4)us
        let s = IoSnapshot {
            latency_us: snap,
            ..Default::default()
        };
        assert_eq!(s.latency_percentile_us(50), 4);
        assert_eq!(s.latency_percentile_us(99), 1024);
        assert_eq!(IoSnapshot::default().latency_percentile_us(50), 0);
    }

    /// Pins the percentile boundary semantics: an empty histogram and a
    /// histogram whose only occupied bucket is bucket 0 (sub-microsecond
    /// completions) both report 0, never bucket 0's upper bound; a
    /// histogram occupying exactly one bucket `b > 0` reports that
    /// bucket's upper bound for every percentile.
    #[test]
    fn latency_percentile_boundary_values() {
        // Empty: 0 at every percentile.
        for p in [0, 1, 50, 99, 100] {
            assert_eq!(IoSnapshot::default().latency_percentile_us(p), 0);
        }
        // All samples sub-microsecond: the quantile lands in bucket 0 and
        // must report 0, not 1 µs.
        let mut sub_us = IoSnapshot::default();
        sub_us.latency_us[0] = 17;
        for p in [1, 50, 99, 100] {
            assert_eq!(sub_us.latency_percentile_us(p), 0, "p{p}");
        }
        // One occupied bucket b > 0: every percentile reports 2^b.
        for b in [1, 5, LATENCY_BUCKETS - 1] {
            let mut one = IoSnapshot::default();
            one.latency_us[b] = 3;
            for p in [1, 50, 100] {
                assert_eq!(
                    one.latency_percentile_us(p),
                    latency_bucket_upper_us(b),
                    "bucket {b} p{p}"
                );
            }
        }
        // Mixed bucket-0 + higher bucket: quantiles below the bucket-0
        // mass report 0, quantiles above it report the upper bucket.
        let mut mixed = IoSnapshot::default();
        mixed.latency_us[0] = 9;
        mixed.latency_us[4] = 1;
        assert_eq!(mixed.latency_percentile_us(50), 0);
        assert_eq!(mixed.latency_percentile_us(100), 16);
    }

    /// Pins the cache-aware coverage invariant: cache-served visits enter
    /// neither the prefetch nor the physical-read ledgers, while every
    /// shared-cache miss must be covered by its own physical read — a
    /// miss that never reached the device (i.e. was double-counted as
    /// cache-served) must trip `assert_consistent`.
    #[test]
    fn assert_consistent_accounts_cache_served_reads() {
        // Pure tenant workload: 6 hits cost nothing, 4 misses each paid a
        // direct physical read. No prefetch traffic at all.
        let tenant = IoSnapshot {
            disk_reads: 4,
            cache_hits: 6,
            cache_misses: 4,
            ..Default::default()
        };
        tenant.assert_consistent();

        // Tenant + prefetch engine side by side: the engine's 5 completed
        // reads and the tenants' 4 miss reads are disjoint physical reads.
        let mixed = IoSnapshot {
            disk_reads: 9,
            submitted: 5,
            completed: 5,
            spill_requests: 5,
            prefetch_hits: 5,
            cache_hits: 6,
            cache_misses: 4,
            ..Default::default()
        };
        mixed.assert_consistent();

        // Double-counting: a visit recorded as a cache miss without a
        // covering physical read (e.g. it was actually served from the
        // cache, or charged to the prefetch pipeline instead).
        let double = IoSnapshot {
            disk_reads: 3,
            cache_misses: 4,
            ..Default::default()
        };
        assert!(std::panic::catch_unwind(|| double.assert_consistent()).is_err());
    }

    #[test]
    fn bandwidth_profile_tracks_observed_throughput() {
        let p = BandwidthProfile::new(2);
        assert_eq!(p.estimate_mbps(0), None);
        assert_eq!(p.samples(1), 0);
        // 1 MB in 10 ms = 100 MB/s; the first sample seeds the EWMA.
        p.observe(0, 1_000_000, Duration::from_millis(10));
        let e = p.estimate_mbps(0).unwrap();
        assert!((e - 100.0).abs() < 1.0, "{e}");
        // A slower sample pulls the estimate down by alpha.
        p.observe(0, 1_000_000, Duration::from_millis(100)); // 10 MB/s
        let e2 = p.estimate_mbps(0).unwrap();
        assert!(e2 < e && e2 > 10.0, "{e2}");
        // Shard 1 is independent and still unobserved.
        assert_eq!(p.estimate_mbps(1), None);
        assert_eq!(p.snapshot_mbps()[1], 0.0);
        // Out-of-range shards are ignored, not panics.
        p.observe(9, 100, Duration::from_micros(1));
        assert_eq!(p.samples(0), 2);
    }

    #[test]
    fn degrading_device_decays_to_floor() {
        let dir = std::env::temp_dir().join(format!("toc-io-degrade-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev.bin");
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .read(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        f.write_all(&[7u8; 64]).unwrap();
        let dev = SpillDevice::with_profile(f, Some(DeviceProfile::degrading(100.0, 0.5)));
        assert_eq!(dev.current_mbps(None), Some(100.0));
        dev.degrade_after_read();
        assert_eq!(dev.current_mbps(None), Some(50.0));
        for _ in 0..32 {
            dev.degrade_after_read();
        }
        assert_eq!(dev.current_mbps(None), Some(DEGRADE_FLOOR_MBPS));
        // A stable device never decays, and without an override the
        // store-wide fallback applies.
        let f2 = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .read(true)
            .open(&path)
            .unwrap();
        let stable = SpillDevice::new(f2);
        assert_eq!(stable.current_mbps(Some(42.0)), Some(42.0));
        stable.degrade_after_read();
        assert_eq!(stable.current_mbps(None), None);
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn scheduler_config_resolution_and_pin_validation() {
        let auto = SchedulerConfig::default();
        // Auto: pool follows depth, ring follows shard count, both capped.
        assert_eq!(auto.resolved_io_threads(IoEngineKind::Pool, 4, 3), 3);
        assert_eq!(auto.resolved_io_threads(IoEngineKind::Ring, 4, 3), 4);
        assert_eq!(
            auto.resolved_io_threads(IoEngineKind::Ring, 99, 3),
            MAX_IO_THREADS
        );
        assert_eq!(auto.resolved_decode_workers(3, 8), 3);
        assert_eq!(auto.resolved_decode_workers(0, 8), 1);
        // Off pinning = one shared completion lane.
        assert_eq!(auto.completion_lanes(4, 8), 1);

        let pinned = SchedulerConfig {
            io_threads: 2,
            decode_workers: 6,
            pinning: Pinning::Auto,
        };
        assert_eq!(pinned.resolved_io_threads(IoEngineKind::Ring, 4, 3), 2);
        assert_eq!(pinned.resolved_decode_workers(3, 8), 6);
        // Lanes never exceed the shard count (starved lanes would idle
        // their decode workers forever).
        assert_eq!(pinned.completion_lanes(6, 3), 3);
        assert_eq!(pinned.completion_lanes(2, 8), 2);
        // Auto assignment is the stable modulo map.
        assert_eq!(pinned.ring_assignment(5, 2).unwrap(), vec![0, 1, 0, 1, 0]);

        // Fixed maps: valid, wrong length, out-of-range thread.
        let fixed = |map: Vec<usize>| SchedulerConfig {
            io_threads: 2,
            decode_workers: 0,
            pinning: Pinning::Fixed(map),
        };
        assert_eq!(
            fixed(vec![1, 0, 1]).ring_assignment(3, 2).unwrap(),
            vec![1, 0, 1]
        );
        assert!(fixed(vec![0]).ring_assignment(3, 2).is_err());
        assert!(fixed(vec![0, 2, 1]).ring_assignment(3, 2).is_err());
        assert_eq!(Pinning::Off.name(), "off");
        assert_eq!(Pinning::Auto.name(), "auto");
        assert_eq!(Pinning::Fixed(vec![0]).name(), "fixed");
    }

    #[test]
    fn striped_completion_lanes_route_by_shard_and_wake_on_shutdown() {
        let chunks: Vec<_> = (0..8u8).map(|i| chunk(i as usize % 2, i, 32)).collect();
        let (io, layout, paths) = test_shards(2, &chunks);
        // Two lanes over two shards: every completion for shard s must
        // surface on lane s.
        let engine = PoolIo::start(Arc::clone(&io), 2, 2);
        let mut expected = HashMap::new();
        for (req, bytes) in &layout {
            let t = engine.submit(*req, Vec::new());
            expected.insert(t, (req.shard, bytes.clone()));
        }
        for lane in 0..2 {
            for _ in 0..4 {
                let c = engine.complete_on(lane).expect("lane completion");
                let (shard, bytes) = &expected[&c.ticket];
                assert_eq!(c.shard % 2, lane, "completion crossed lanes");
                assert_eq!(*shard, c.shard);
                assert_eq!(&c.buf, bytes);
            }
        }
        assert_eq!(engine.in_flight(), 0);
        // Shutdown must wake a worker blocked on *any* lane.
        let woke = std::thread::scope(|s| {
            let e = &engine;
            let h = s.spawn(move || e.complete_on(1).is_none());
            std::thread::sleep(Duration::from_millis(10));
            e.shutdown();
            h.join().unwrap()
        });
        assert!(woke, "lane 1 waiter not woken by shutdown");
        drop(engine);
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn ring_engine_honors_fixed_assignment() {
        // 3 shards pinned to 2 ring threads: shard 2 shares thread 0.
        let chunks: Vec<_> = (0..9u8).map(|i| chunk(i as usize % 3, i, 48)).collect();
        let (io, layout, paths) = test_shards(3, &chunks);
        let engine = RingIo::start(Arc::clone(&io), 2, vec![0, 1, 0], 2);
        let mut expected = HashMap::new();
        for (req, bytes) in &layout {
            let t = engine.submit(*req, Vec::new());
            expected.insert(t, bytes.clone());
        }
        // Drain both lanes until every completion surfaced.
        let mut seen = 0;
        while seen < expected.len() {
            for lane in 0..2 {
                // Lanes can be empty; poll via a short-lived helper thread
                // is overkill — completions for shard s land on lane s % 2,
                // and both lanes receive work here, so blocking drain per
                // lane in proportion works: lane 0 gets shards 0+2 (6), 1
                // gets shard 1 (3).
                let want = if lane == 0 { 6 } else { 3 };
                for _ in 0..want {
                    let c = engine.complete_on(lane).expect("completion");
                    assert!(c.result.is_ok());
                    assert_eq!(c.shard % 2, lane);
                    assert_eq!(&c.buf, &expected[&c.ticket]);
                    seen += 1;
                }
            }
        }
        io.stats.snapshot_stable().assert_consistent();
        drop(engine);
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }
}
