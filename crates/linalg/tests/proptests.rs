//! Property tests for the linear-algebra substrate: algebraic identities
//! that every downstream kernel comparison depends on.

use proptest::prelude::*;
use toc_linalg::dense::max_abs_diff_vec;
use toc_linalg::{DenseMatrix, SparseRows};

fn matrix(max_r: usize, max_c: usize) -> impl Strategy<Value = DenseMatrix> {
    (1..=max_r, 1..=max_c).prop_flat_map(|(r, c)| {
        prop::collection::vec(prop_oneof![3 => Just(0.0f64), 2 => -50.0f64..50.0], r * c)
            .prop_map(move |data| DenseMatrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sparse_roundtrip(a in matrix(25, 25)) {
        prop_assert_eq!(SparseRows::encode(&a).decode(), a);
    }

    #[test]
    fn transpose_involution(a in matrix(20, 20)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_linearity(a in matrix(15, 15), c in -3.0f64..3.0) {
        let v: Vec<f64> = (0..a.cols()).map(|i| (i as f64) - 2.0).collect();
        let scaled: Vec<f64> = v.iter().map(|x| c * x).collect();
        let lhs = a.matvec(&scaled);
        let rhs: Vec<f64> = a.matvec(&v).iter().map(|x| c * x).collect();
        prop_assert!(max_abs_diff_vec(&lhs, &rhs) < 1e-6);
    }

    #[test]
    fn vecmat_is_transpose_matvec(a in matrix(15, 15)) {
        let w: Vec<f64> = (0..a.rows()).map(|i| ((i % 4) as f64) - 1.5).collect();
        let lhs = a.vecmat(&w);
        let rhs = a.transpose().matvec(&w);
        prop_assert!(max_abs_diff_vec(&lhs, &rhs) < 1e-9);
    }

    #[test]
    fn matmat_associates_with_matvec(a in matrix(10, 10)) {
        // (A·M)·e_j == A·(M·e_j): check via an explicit M.
        let m = DenseMatrix::from_vec(
            a.cols(), 3,
            (0..a.cols() * 3).map(|i| ((i % 5) as f64) * 0.5 - 1.0).collect(),
        );
        let prod = a.matmat(&m);
        for j in 0..3 {
            let col: Vec<f64> = (0..m.rows()).map(|r| m.get(r, j)).collect();
            let direct = a.matvec(&col);
            let from_prod: Vec<f64> = (0..prod.rows()).map(|r| prod.get(r, j)).collect();
            prop_assert!(max_abs_diff_vec(&direct, &from_prod) < 1e-9);
        }
    }

    #[test]
    fn sparse_kernels_agree(a in matrix(20, 20)) {
        let s = SparseRows::encode(&a);
        let v: Vec<f64> = (0..a.cols()).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let w: Vec<f64> = (0..a.rows()).map(|i| ((i * 5 % 3) as f64) - 1.0).collect();
        prop_assert!(max_abs_diff_vec(&s.matvec(&v), &a.matvec(&v)) < 1e-9);
        prop_assert!(max_abs_diff_vec(&s.vecmat(&w), &a.vecmat(&w)) < 1e-9);
    }

    #[test]
    fn density_bounds(a in matrix(15, 15)) {
        let d = a.density();
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert_eq!(a.nnz() == 0, d == 0.0);
    }
}
