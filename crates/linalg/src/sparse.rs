//! Sparse row representation: each row is a list of `(column, value)` pairs
//! with zeros elided. This is the paper's "sparse encoded table" (Figure 3 B)
//! and also the logical content of the CSR baseline.

use crate::dense::DenseMatrix;

/// A single column index:value pair (the paper's compression unit).
///
/// Values are compared bit-exactly (`f64::to_bits`) everywhere in the
/// workspace: compression must be lossless, and `-0.0`/`0.0`, NaN payloads
/// etc. must survive a roundtrip unchanged.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ColVal {
    /// Zero-based column index.
    pub col: u32,
    /// The (non-zero) cell value.
    pub val: f64,
}

impl ColVal {
    /// Bit-exact equality, used for dictionary keys.
    #[inline]
    pub fn bits_eq(&self, other: &ColVal) -> bool {
        self.col == other.col && self.val.to_bits() == other.val.to_bits()
    }
}

/// Sparse-row view of a matrix: zeros removed, each remaining cell stored as
/// a [`ColVal`] pair, row boundaries preserved.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseRows {
    rows: usize,
    cols: usize,
    /// Concatenated pairs for all rows.
    pairs: Vec<ColVal>,
    /// `offsets[r]..offsets[r+1]` indexes `pairs` for row `r`.
    offsets: Vec<usize>,
}

impl SparseRows {
    /// Sparse-encode a dense matrix (the paper's "Step 1: Sparse Encoding").
    pub fn encode(dense: &DenseMatrix) -> Self {
        let mut pairs = Vec::with_capacity(dense.nnz());
        let mut offsets = Vec::with_capacity(dense.rows() + 1);
        offsets.push(0);
        for r in 0..dense.rows() {
            for (c, &v) in dense.row(r).iter().enumerate() {
                if v != 0.0 {
                    pairs.push(ColVal {
                        col: c as u32,
                        val: v,
                    });
                }
            }
            offsets.push(pairs.len());
        }
        Self {
            rows: dense.rows(),
            cols: dense.cols(),
            pairs,
            offsets,
        }
    }

    /// Build directly from per-row pair lists (used by tests and decoders).
    pub fn from_parts(rows: usize, cols: usize, pairs: Vec<ColVal>, offsets: Vec<usize>) -> Self {
        assert_eq!(offsets.len(), rows + 1);
        assert_eq!(*offsets.last().unwrap(), pairs.len());
        Self {
            rows,
            cols,
            pairs,
            offsets,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the underlying dense matrix.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of stored pairs (the paper's `|B|`).
    #[inline]
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Pairs of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[ColVal] {
        &self.pairs[self.offsets[r]..self.offsets[r + 1]]
    }

    /// All pairs, concatenated row-major.
    #[inline]
    pub fn pairs(&self) -> &[ColVal] {
        &self.pairs
    }

    /// Row offset table (len = rows + 1).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Decode back to dense (the inverse of [`SparseRows::encode`]).
    pub fn decode(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        self.decode_into(&mut out);
        out
    }

    /// Decode into a caller-owned matrix (reshaped as needed).
    pub fn decode_into(&self, out: &mut DenseMatrix) {
        out.reset(self.rows, self.cols);
        for r in 0..self.rows {
            for p in self.row(r) {
                out.set(r, p.col as usize, p.val);
            }
        }
    }

    /// Reference CSR `A·v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.matvec_into(v, &mut out);
        out
    }

    /// CSR `A·v` into a caller-owned buffer.
    pub fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        assert_eq!(v.len(), self.cols);
        crate::dense::reset_vec(out, self.rows);
        for (r, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for p in self.row(r) {
                acc += p.val * v[p.col as usize];
            }
            *o = acc;
        }
    }

    /// Reference CSR `v·A`.
    pub fn vecmat(&self, v: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.vecmat_into(v, &mut out);
        out
    }

    /// CSR `v·A` into a caller-owned buffer.
    pub fn vecmat_into(&self, v: &[f64], out: &mut Vec<f64>) {
        assert_eq!(v.len(), self.rows);
        crate::dense::reset_vec(out, self.cols);
        for (r, &w) in v.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            for p in self.row(r) {
                out[p.col as usize] += w * p.val;
            }
        }
    }

    /// CSR `A·M` into a caller-owned matrix (shared by every format that
    /// wraps sparse rows: CSR and the TOC_SPARSE ablation).
    pub fn matmat_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        out.reset(self.rows, m.cols());
        for r in 0..self.rows {
            let orow = out.row_mut(r);
            for p in self.row(r) {
                let mrow = m.row(p.col as usize);
                for (o, &b) in orow.iter_mut().zip(mrow) {
                    *o += p.val * b;
                }
            }
        }
    }

    /// CSR `M·A` into a caller-owned matrix.
    pub fn matmat_left_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        out.reset(m.rows(), self.cols);
        for q in 0..m.rows() {
            let mrow = m.row(q);
            let orow = out.row_mut(q);
            for (r, &w) in mrow.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                for p in self.row(r) {
                    orow[p.col as usize] += w * p.val;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sparse_random(rng: &mut StdRng, rows: usize, cols: usize, density: f64) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen::<f64>() < density {
                    m.set(r, c, rng.gen_range(-5.0..5.0));
                }
            }
        }
        m
    }

    #[test]
    fn encode_elides_zeros_and_keeps_boundaries() {
        // Figure 3 A/B worked example.
        let a = DenseMatrix::from_rows(vec![
            vec![1.1, 2.0, 3.0, 1.4],
            vec![1.1, 2.0, 3.0, 0.0],
            vec![0.0, 1.1, 3.0, 1.4],
            vec![1.1, 2.0, 0.0, 0.0],
        ]);
        let s = SparseRows::encode(&a);
        assert_eq!(s.row(1).len(), 3);
        assert_eq!(s.row(2)[0], ColVal { col: 1, val: 1.1 });
        assert_eq!(s.row(3).len(), 2);
        assert_eq!(s.num_pairs(), 12);
    }

    #[test]
    fn roundtrip_identity() {
        let mut rng = StdRng::seed_from_u64(11);
        for density in [0.05, 0.4, 1.0] {
            let a = sparse_random(&mut rng, 17, 9, density);
            assert_eq!(SparseRows::encode(&a).decode(), a);
        }
    }

    #[test]
    fn kernels_match_dense_reference() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = sparse_random(&mut rng, 20, 13, 0.3);
        let s = SparseRows::encode(&a);
        let v: Vec<f64> = (0..13).map(|i| i as f64 * 0.5 - 3.0).collect();
        let w: Vec<f64> = (0..20).map(|i| (i % 5) as f64).collect();
        assert_eq!(s.matvec(&v), a.matvec(&v));
        assert_eq!(s.vecmat(&w), a.vecmat(&w));
    }

    #[test]
    fn empty_rows_are_preserved() {
        let a = DenseMatrix::from_rows(vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 0.0]]);
        let s = SparseRows::encode(&a);
        assert_eq!(s.row(0).len(), 0);
        assert_eq!(s.row(2).len(), 0);
        assert_eq!(s.decode(), a);
    }

    #[test]
    fn negative_zero_survives() {
        let a = DenseMatrix::from_rows(vec![vec![-0.0_f64, 2.0]]);
        // -0.0 == 0.0 so it is elided; decode yields +0.0 which is == -0.0.
        let s = SparseRows::encode(&a);
        assert_eq!(s.num_pairs(), 1);
        assert_eq!(s.decode().get(0, 0), 0.0);
    }
}
