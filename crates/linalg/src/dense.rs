//! Row-major dense matrix used as the uncompressed reference representation
//! (the paper's DEN format stores exactly this, row by row, as IEEE-754
//! doubles).

use rand::Rng;

/// A row-major dense matrix of `f64`.
///
/// This is the uncompressed "ground truth" representation. Every compressed
/// format in the workspace encodes from and decodes back to a `DenseMatrix`,
/// and all compressed kernels are checked against the reference kernels
/// implemented here.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Default for DenseMatrix {
    /// An empty `0 × 0` matrix — the natural initial state of a reusable
    /// output buffer for the `*_into` kernels.
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl std::fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(12)])?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl DenseMatrix {
    /// Create a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major buffer. Panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "dense buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Build from per-row vectors. All rows must have equal length.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in &rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Matrix filled with uniform random values in `[lo, hi)`.
    pub fn random<R: Rng>(rng: &mut R, rows: usize, cols: usize, lo: f64, hi: f64) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and recover its flat row-major buffer, so a
    /// staging workspace can wrap its buffer in a matrix for one encode
    /// and take the allocation back afterwards.
    #[inline]
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Fraction of non-zero entries (the paper's "sparsity" in Table 5).
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let nnz = self.data.iter().filter(|v| **v != 0.0).count();
        nnz as f64 / self.data.len() as f64
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    /// Select a contiguous row range `[start, end)` as a new matrix.
    pub fn slice_rows(&self, start: usize, end: usize) -> DenseMatrix {
        assert!(start <= end && end <= self.rows);
        DenseMatrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Gather the given rows (by index) into a new matrix.
    pub fn gather_rows(&self, idx: &[usize]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Reshape this matrix to `rows × cols` with all elements zeroed,
    /// reusing the existing allocation when it is large enough. This is the
    /// primitive behind every caller-owned output buffer in the `*_into`
    /// kernel family.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Transpose into a caller-owned matrix (reshaped as needed).
    pub fn transpose_into(&self, out: &mut DenseMatrix) {
        out.reset(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Reference kernel: `A · v` (matrix times column vector).
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.matvec_into(v, &mut out);
        out
    }

    /// `A · v` into a caller-owned buffer (resized as needed).
    pub fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        reset_vec(out, self.rows);
        for (r, o) in out.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            *o = acc;
        }
    }

    /// Reference kernel: `v · A` (row vector times matrix).
    pub fn vecmat(&self, v: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.vecmat_into(v, &mut out);
        out
    }

    /// `v · A` into a caller-owned buffer (resized as needed).
    pub fn vecmat_into(&self, v: &[f64], out: &mut Vec<f64>) {
        assert_eq!(v.len(), self.rows, "vecmat dimension mismatch");
        reset_vec(out, self.cols);
        for (r, &w) in v.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(self.row(r)) {
                *o += w * a;
            }
        }
    }

    /// Reference kernel: `A · M`.
    pub fn matmat(&self, m: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(0, 0);
        self.matmat_into(m, &mut out);
        out
    }

    /// `A · M` into a caller-owned matrix (reshaped as needed).
    pub fn matmat_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        assert_eq!(self.cols, m.rows, "matmat dimension mismatch");
        out.reset(self.rows, m.cols);
        for r in 0..self.rows {
            let arow = &self.data[r * self.cols..(r + 1) * self.cols];
            // i-k-j loop order keeps both inner accesses sequential.
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let mrow = m.row(k);
                let orow = out.row_mut(r);
                for (o, &b) in orow.iter_mut().zip(mrow) {
                    *o += a * b;
                }
            }
        }
    }

    /// Reference kernel: `M · A` where `self` is `A` (returns `M · A`).
    pub fn matmat_left(&self, m: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(0, 0);
        self.matmat_left_into(m, &mut out);
        out
    }

    /// `M · A` into a caller-owned matrix (reshaped as needed).
    pub fn matmat_left_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        assert_eq!(m.cols, self.rows, "matmat_left dimension mismatch");
        out.reset(m.rows, self.cols);
        for r in 0..m.rows {
            let mrow = m.row(r);
            for (k, &w) in mrow.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                let arow = self.row(k);
                let orow = out.row_mut(r);
                for (o, &a) in orow.iter_mut().zip(arow) {
                    *o += w * a;
                }
            }
        }
    }

    /// Element-wise scale by `c` (sparse-safe in the paper's terms).
    pub fn scale(&mut self, c: f64) {
        for v in &mut self.data {
            *v *= c;
        }
    }

    /// Element-wise add `c` (sparse-unsafe).
    pub fn add_scalar(&self, c: f64) -> DenseMatrix {
        let data = self.data.iter().map(|v| v + c).collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise sum with another matrix of identical shape.
    pub fn add(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Max absolute element difference; used by tests as a tolerance metric.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Serialized size in bytes of the DEN representation (8 bytes/element
    /// plus the 16-byte shape header). This is the denominator of every
    /// compression ratio reported in the paper.
    pub fn den_size_bytes(&self) -> usize {
        16 + 8 * self.data.len()
    }
}

/// Clear and zero-fill a caller-owned output vector to length `n`,
/// reusing its allocation (the `Vec<f64>` counterpart of
/// [`DenseMatrix::reset`]).
#[inline]
pub fn reset_vec(out: &mut Vec<f64>, n: usize) {
    out.clear();
    out.resize(n, 0.0);
}

/// Max absolute difference between two vectors (test helper).
pub fn max_abs_diff_vec(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_accessors() {
        let m = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_panic() {
        DenseMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = DenseMatrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![0.0, -1.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 3.0]);
    }

    #[test]
    fn vecmat_matches_manual() {
        let m = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.vecmat(&[1.0, 2.0]), vec![7.0, 10.0]);
    }

    #[test]
    fn matmat_matches_transpose_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = DenseMatrix::random(&mut rng, 5, 4, -1.0, 1.0);
        let id = {
            let mut m = DenseMatrix::zeros(4, 4);
            for i in 0..4 {
                m.set(i, i, 1.0);
            }
            m
        };
        let prod = a.matmat(&id);
        assert_eq!(prod, a);
    }

    #[test]
    fn matmat_left_agrees_with_transposed_matmat() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = DenseMatrix::random(&mut rng, 6, 5, -2.0, 2.0);
        let m = DenseMatrix::random(&mut rng, 3, 6, -2.0, 2.0);
        // (M·A)ᵀ = Aᵀ·Mᵀ
        let left = a.matmat_left(&m);
        let via_t = a.transpose().matmat(&m.transpose()).transpose();
        assert!(left.max_abs_diff(&via_t) < 1e-12);
    }

    #[test]
    fn density_and_nnz() {
        let m = DenseMatrix::from_rows(vec![vec![0.0, 1.0], vec![2.0, 0.0]]);
        assert_eq!(m.nnz(), 2);
        assert!((m.density() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn slice_and_gather_rows() {
        let m = DenseMatrix::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]);
        assert_eq!(m.slice_rows(1, 3).data(), &[2.0, 3.0]);
        assert_eq!(m.gather_rows(&[2, 0]).data(), &[3.0, 1.0]);
    }

    #[test]
    fn scale_and_add_scalar() {
        let mut m = DenseMatrix::from_rows(vec![vec![1.0, -2.0]]);
        m.scale(3.0);
        assert_eq!(m.data(), &[3.0, -6.0]);
        assert_eq!(m.add_scalar(1.0).data(), &[4.0, -5.0]);
    }

    #[test]
    fn den_size_matches_formula() {
        let m = DenseMatrix::zeros(10, 3);
        assert_eq!(m.den_size_bytes(), 16 + 8 * 30);
    }
}
