#![forbid(unsafe_code)]
//! Dense/sparse linear-algebra substrate.
pub mod dense;
pub mod sparse;
pub use dense::DenseMatrix;
pub use sparse::SparseRows;
