#![forbid(unsafe_code)]
//! Offline shim for the subset of `parking_lot` this workspace uses: a
//! [`Mutex`] whose `lock()` returns the guard directly (no poisoning
//! `Result`). Backed by `std::sync::Mutex`; a poisoned lock is recovered
//! rather than propagated, matching `parking_lot` semantics.

use std::sync::MutexGuard;

/// Mutex with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
