#![forbid(unsafe_code)]
//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Implements [`Strategy`] with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`Just`], `prop_oneof!`,
//! `any::<T>()`, and the [`proptest!`] / `prop_assert*` macros. Each test
//! runs `ProptestConfig::cases` deterministic cases seeded from the test
//! name, so failures reproduce across runs. No shrinking: a failing case
//! panics with the generated inputs' `Debug` representation via the plain
//! `assert!` machinery, which is enough for this workspace's CI.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

/// The RNG driving test-case generation.
pub type TestRng = StdRng;

/// Per-block configuration (subset of the real `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values (no shrinking in this shim).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy (what `prop_oneof!` stores).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted union over same-valued strategies (backs `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Self { options, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::Rng;
                rng.gen::<$t>()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy form of [`Arbitrary`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::prelude::any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`]: an exact `usize`, a
    /// half-open range, or an inclusive range.
    pub trait SizeRange {
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element_strategy, len)`.
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

/// The `prop::` module path used by `prop::collection::vec` etc.
pub mod prop {
    pub use crate::collection;
}

/// Seed a test RNG deterministically from the test's name.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// The `proptest! { ... }` block: expands each
/// `#[test] fn name(arg in strategy, ...) { body }` item into a plain
/// `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    (@munch ($config:expr)) => {};
    (@munch ($config:expr)
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::rng_for_test("strategies_generate_in_bounds");
        let s = (1usize..=10, 0.0f64..1.0).prop_flat_map(|(n, _d)| {
            prop::collection::vec(-5.0f64..5.0, n).prop_map(|v| (v.len(), v))
        });
        for _ in 0..200 {
            let (n, v) = s.generate(&mut rng);
            assert!((1..=10).contains(&n));
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|x| (-5.0..5.0).contains(x)));
        }
    }

    #[test]
    fn oneof_respects_weights() {
        let mut rng = crate::rng_for_test("oneof_respects_weights");
        let s = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let ones = (0..1000).filter(|_| s.generate(&mut rng) == 1).count();
        assert!(ones > 800, "ones = {ones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 8);
        }
    }
}
