#![forbid(unsafe_code)]
//! Offline shim implementing the subset of the `rand` 0.8 API this
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`].
//!
//! The build environment has no crates.io access, so the workspace vendors
//! this minimal, deterministic implementation instead. The generator is
//! xoshiro256++ seeded through SplitMix64 — the same construction `rand`'s
//! `StdRng::seed_from_u64` documents as acceptable for reproducible,
//! non-cryptographic use. Distributions use straightforward modulo /
//! 53-bit-mantissa sampling: statistically fine for tests and synthetic
//! data generation, which is all this workspace needs.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] just like the real crate.
pub trait Rng: RngCore {
    /// Sample a value of a type with a standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`] (stands in for
/// `Standard: Distribution<T>`).
pub trait Standard {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`] (stands in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = f64::sample(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = f64::sample(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::prelude` subset.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(0..=5usize);
            assert!(j <= 5);
            let f = rng.gen_range(-2.5..2.5);
            assert!((-2.5..2.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let n = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&n));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }
}
