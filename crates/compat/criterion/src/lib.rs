#![forbid(unsafe_code)]
//! Offline shim for the subset of `criterion` this workspace uses:
//! [`Criterion`], [`BenchmarkGroup`] with `sample_size` /
//! `measurement_time` / `warm_up_time`, [`BenchmarkId`], `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Bench targets must set `harness = false` (they do). Each benchmark is
//! warmed up, then timed in batches until the measurement budget is spent;
//! the mean per-iteration wall time is printed. No statistics, plots, or
//! baselines — enough to compare kernels and catch order-of-magnitude
//! regressions offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        let (sample_size, measurement_time, warm_up_time) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
            measurement_time,
            warm_up_time,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(
            name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }
}

/// Named benchmark id (`BenchmarkId::new("op", param)` prints as
/// `op/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            id: format!("{}/{param}", name.into()),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkLabel {
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.id
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<I: IntoBenchmarkLabel, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one(
    label: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        mode: Mode::WarmUp,
        budget: warm_up,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut b = Bencher {
        mode: Mode::Measure {
            min_iters: sample_size as u64,
        },
        budget: measurement,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    println!("{label:<55} {:>12}  ({} iters)", fmt_time(mean), b.iters);
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

enum Mode {
    WarmUp,
    Measure { min_iters: u64 },
}

/// Passed to the benchmark closure; `iter` runs the routine repeatedly.
pub struct Bencher {
    mode: Mode,
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        match self.mode {
            Mode::WarmUp => {
                let t0 = Instant::now();
                while t0.elapsed() < self.budget {
                    black_box(f());
                    self.iters += 1;
                    if self.iters >= 1_000_000 {
                        break;
                    }
                }
            }
            Mode::Measure { min_iters } => {
                let t0 = Instant::now();
                loop {
                    black_box(f());
                    self.iters += 1;
                    let elapsed = t0.elapsed();
                    if (elapsed >= self.budget && self.iters >= min_iters.min(10))
                        || self.iters >= 10_000_000
                    {
                        self.elapsed = elapsed;
                        break;
                    }
                }
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut count = 0u64;
        group.bench_function(BenchmarkId::new("noop", "x"), |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }
}
