//! Synchronous data-parallel NN training (the "classical way" of Dean et
//! al. the paper cites for its NN workloads, §5.3): each round, `workers`
//! threads compute gradients for distinct mini-batches against the same
//! snapshot of the weights; the averaged update is then applied once.

use crate::mgd::{targets_for_nn, BatchProvider, MgdConfig};
use crate::models::NeuralNet;
use std::time::{Duration, Instant};
use toc_linalg::DenseMatrix;

/// Train `nn` with synchronous data parallelism. Returns total train time.
pub fn train_nn_parallel(
    nn: &mut NeuralNet,
    data: &(dyn BatchProvider + Sync),
    config: &MgdConfig,
    workers: usize,
) -> Duration {
    assert!(workers >= 1);
    let mut train_time = Duration::ZERO;
    for _ in 0..config.epochs {
        let t0 = Instant::now();
        let mut next = 0usize;
        while next < data.num_batches() {
            let round: Vec<usize> = (next..(next + workers).min(data.num_batches())).collect();
            next += round.len();

            // Each worker computes the weight delta its mini-batch induces
            // on a private replica of the current weights.
            let deltas: Vec<(Vec<DenseMatrix>, Vec<Vec<f64>>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = round
                    .iter()
                    .map(|&idx| {
                        let mut replica = nn.clone();
                        let lr = config.lr;
                        scope.spawn(move || {
                            let mut out = None;
                            data.visit(idx, &mut |batch, labels| {
                                let targets = targets_for_nn(labels, replica.outputs);
                                let before_w: Vec<DenseMatrix> = replica.weights.clone();
                                let before_b: Vec<Vec<f64>> = replica.biases.clone();
                                replica.update_batch(batch, &targets, lr);
                                let dw: Vec<DenseMatrix> = replica
                                    .weights
                                    .iter()
                                    .zip(&before_w)
                                    .map(|(after, before)| {
                                        let data = after
                                            .data()
                                            .iter()
                                            .zip(before.data())
                                            .map(|(a, b)| a - b)
                                            .collect();
                                        DenseMatrix::from_vec(after.rows(), after.cols(), data)
                                    })
                                    .collect();
                                let db: Vec<Vec<f64>> = replica
                                    .biases
                                    .iter()
                                    .zip(&before_b)
                                    .map(|(after, before)| {
                                        after.iter().zip(before).map(|(a, b)| a - b).collect()
                                    })
                                    .collect();
                                out = Some((dw, db));
                            });
                            out.expect("provider must call the visitor")
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            });

            // Apply the averaged deltas.
            let k = deltas.len() as f64;
            for (dw, db) in deltas {
                for (l, d) in dw.into_iter().enumerate() {
                    let w = nn.weights[l].data_mut();
                    for (wv, dv) in w.iter_mut().zip(d.data()) {
                        *wv += dv / k;
                    }
                }
                for (l, d) in db.into_iter().enumerate() {
                    for (bv, dv) in nn.biases[l].iter_mut().zip(&d) {
                        *bv += dv / k;
                    }
                }
            }
        }
        train_time += t0.elapsed();
    }
    train_time
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mgd::MemoryProvider;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use toc_formats::Scheme;
    use toc_linalg::DenseMatrix;

    fn provider(n: usize, d: usize, rows: usize) -> (MemoryProvider, DenseMatrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(8);
        let truth: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut x = DenseMatrix::zeros(n, d);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let mut f = 0.0;
            #[allow(clippy::needless_range_loop)] // c indexes x, truth in lockstep
            for c in 0..d {
                let v = if rng.gen::<f64>() < 0.5 {
                    (rng.gen_range(1..4) as f64) * 0.5
                } else {
                    0.0
                };
                x.set(r, c, v);
                f += v * truth[c];
            }
            y.push(if f >= 0.0 { 1.0 } else { -1.0 });
        }
        let mut batches = Vec::new();
        let mut s = 0;
        while s < n {
            let e = (s + rows).min(n);
            batches.push((Scheme::Toc.encode(&x.slice_rows(s, e)), y[s..e].to_vec()));
            s = e;
        }
        (
            MemoryProvider {
                batches,
                features: d,
            },
            x,
            y,
        )
    }

    #[test]
    fn parallel_training_learns() {
        let (p, x, y) = provider(400, 8, 40);
        let mut nn = NeuralNet::new(8, &[16], 1, 4);
        let config = MgdConfig {
            epochs: 60,
            lr: 0.6,
            ..Default::default()
        };
        train_nn_parallel(&mut nn, &p, &config, 4);
        let eval = Scheme::Den.encode(&x);
        let targets = targets_for_nn(&y, 1);
        let acc = nn.accuracy(&eval, &targets);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn single_worker_matches_sequential() {
        // workers = 1 must equal plain sequential MGD exactly.
        let (p, _, _) = provider(100, 6, 25);
        let config = MgdConfig {
            epochs: 3,
            lr: 0.4,
            ..Default::default()
        };
        let mut a = NeuralNet::new(6, &[8], 1, 7);
        let mut b = a.clone();
        train_nn_parallel(&mut a, &p, &config, 1);
        for _ in 0..config.epochs {
            for i in 0..p.num_batches() {
                p.visit(i, &mut |batch, labels| {
                    let t = targets_for_nn(labels, 1);
                    b.update_batch(batch, &t, config.lr);
                });
            }
        }
        for (wa, wb) in a.weights.iter().zip(&b.weights) {
            assert!(wa.max_abs_diff(wb) < 1e-12);
        }
    }
}
