//! Synchronous data-parallel NN training (the "classical way" of Dean et
//! al. the paper cites for its NN workloads, §5.3): each round, `workers`
//! threads compute gradients for distinct mini-batches against the same
//! snapshot of the weights; the averaged update is then applied once.
//!
//! Each worker owns a persistent [`WorkerSlot`]: a weight replica, an
//! [`ExecWorkspace`] and delta buffers, all allocated on the worker's
//! first round and reused every round thereafter — no per-round cloning
//! of the model and zero steady-state heap allocation in the gradient
//! path. [`ParallelReport::workspace_allocs`] /
//! [`ParallelReport::workspace_reuses`] expose the reuse discipline so
//! tests can assert it.

use crate::mgd::{targets_for_nn_into, BatchProvider, MgdConfig};
use crate::models::NeuralNet;
use crate::workspace::ExecWorkspace;
use std::time::{Duration, Instant};
use toc_linalg::DenseMatrix;

/// Outcome of a data-parallel training run.
#[derive(Debug)]
pub struct ParallelReport {
    /// Total wall-clock training time.
    pub train_time: Duration,
    /// Synchronous rounds executed (each applies one averaged update).
    pub rounds: usize,
    /// Worker executions that had to allocate their slot (first round per
    /// worker).
    pub workspace_allocs: usize,
    /// Worker executions that reused an already-allocated slot.
    pub workspace_reuses: usize,
}

/// Persistent per-worker state: replica, workspace and delta buffers live
/// across rounds and epochs; only the first round allocates.
#[derive(Default)]
struct WorkerSlot {
    replica: Option<NeuralNet>,
    ws: ExecWorkspace,
    targets: DenseMatrix,
    /// Weight delta this worker's batch induced, per layer.
    dw: Vec<DenseMatrix>,
    /// Bias delta per layer.
    db: Vec<Vec<f64>>,
    allocs: usize,
    reuses: usize,
}

impl WorkerSlot {
    /// Compute the delta mini-batch `idx` induces on a snapshot of
    /// `master`, into this slot's persistent buffers.
    fn run(&mut self, master: &NeuralNet, data: &(dyn BatchProvider + Sync), idx: usize, lr: f64) {
        match &mut self.replica {
            Some(r) => {
                // Sync the persistent replica to the snapshot in place.
                for (rw, mw) in r.weights.iter_mut().zip(&master.weights) {
                    rw.data_mut().copy_from_slice(mw.data());
                }
                for (rb, mb) in r.biases.iter_mut().zip(&master.biases) {
                    rb.copy_from_slice(mb);
                }
                self.reuses += 1;
            }
            None => {
                self.replica = Some(master.clone());
                self.dw = master
                    .weights
                    .iter()
                    .map(|w| DenseMatrix::zeros(w.rows(), w.cols()))
                    .collect();
                self.db = master.biases.iter().map(|b| vec![0.0; b.len()]).collect();
                self.allocs += 1;
            }
        }
        let Self {
            replica,
            ws,
            targets,
            ..
        } = self;
        let replica = replica.as_mut().expect("replica just ensured");
        let mut ran = false;
        data.visit(idx, &mut |batch, labels| {
            targets_for_nn_into(labels, replica.outputs, targets);
            replica.update_batch_ws(batch, targets, lr, ws);
            ran = true;
        });
        assert!(ran, "provider must call the visitor");
        // delta = stepped replica − snapshot, into the persistent buffers.
        for ((d, after), before) in self
            .dw
            .iter_mut()
            .zip(&replica.weights)
            .zip(&master.weights)
        {
            for ((dv, &a), &b) in d.data_mut().iter_mut().zip(after.data()).zip(before.data()) {
                *dv = a - b;
            }
        }
        for ((d, after), before) in self.db.iter_mut().zip(&replica.biases).zip(&master.biases) {
            for ((dv, &a), &b) in d.iter_mut().zip(after).zip(before) {
                *dv = a - b;
            }
        }
    }
}

/// Train `nn` with synchronous data parallelism. Returns total train time.
///
/// Convenience wrapper over [`train_nn_parallel_report`].
pub fn train_nn_parallel(
    nn: &mut NeuralNet,
    data: &(dyn BatchProvider + Sync),
    config: &MgdConfig,
    workers: usize,
) -> Duration {
    train_nn_parallel_report(nn, data, config, workers).train_time
}

/// [`train_nn_parallel`] with the full [`ParallelReport`].
///
/// Deterministic for a fixed `(model seed, config, workers)`: deltas land
/// in per-worker buffers and are applied in worker order after the
/// round's barrier, so thread scheduling never changes the result.
pub fn train_nn_parallel_report(
    nn: &mut NeuralNet,
    data: &(dyn BatchProvider + Sync),
    config: &MgdConfig,
    workers: usize,
) -> ParallelReport {
    assert!(workers >= 1);
    let mut slots: Vec<WorkerSlot> = (0..workers).map(|_| WorkerSlot::default()).collect();
    let mut train_time = Duration::ZERO;
    let mut rounds = 0usize;
    for _ in 0..config.epochs {
        let t0 = Instant::now();
        let mut next = 0usize;
        while next < data.num_batches() {
            let n_round = workers.min(data.num_batches() - next);
            let active = &mut slots[..n_round];
            {
                // Workers see the same immutable snapshot of the weights.
                let master: &NeuralNet = nn;
                std::thread::scope(|scope| {
                    for (w, slot) in active.iter_mut().enumerate() {
                        let idx = next + w;
                        scope.spawn(move || slot.run(master, data, idx, config.lr));
                    }
                });
            }
            // Apply the averaged deltas in worker order (deterministic).
            let k = n_round as f64;
            for slot in active.iter() {
                for (l, d) in slot.dw.iter().enumerate() {
                    let w = nn.weights[l].data_mut();
                    for (wv, dv) in w.iter_mut().zip(d.data()) {
                        *wv += dv / k;
                    }
                }
                for (l, d) in slot.db.iter().enumerate() {
                    for (bv, dv) in nn.biases[l].iter_mut().zip(d) {
                        *bv += dv / k;
                    }
                }
            }
            next += n_round;
            rounds += 1;
        }
        train_time += t0.elapsed();
        // Same epoch-boundary feedback the serial trainer gives (adaptive
        // spill stores rebalance here); excluded from train_time.
        data.end_epoch();
    }
    ParallelReport {
        train_time,
        rounds,
        workspace_allocs: slots.iter().map(|s| s.allocs).sum(),
        workspace_reuses: slots.iter().map(|s| s.reuses).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mgd::{targets_for_nn, MemoryProvider};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use toc_formats::Scheme;
    use toc_linalg::DenseMatrix;

    fn provider(n: usize, d: usize, rows: usize) -> (MemoryProvider, DenseMatrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(8);
        let truth: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut x = DenseMatrix::zeros(n, d);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let mut f = 0.0;
            #[allow(clippy::needless_range_loop)] // c indexes x, truth in lockstep
            for c in 0..d {
                let v = if rng.gen::<f64>() < 0.5 {
                    (rng.gen_range(1..4) as f64) * 0.5
                } else {
                    0.0
                };
                x.set(r, c, v);
                f += v * truth[c];
            }
            y.push(if f >= 0.0 { 1.0 } else { -1.0 });
        }
        let mut batches = Vec::new();
        let mut s = 0;
        while s < n {
            let e = (s + rows).min(n);
            batches.push((Scheme::Toc.encode(&x.slice_rows(s, e)), y[s..e].to_vec()));
            s = e;
        }
        (
            MemoryProvider {
                batches,
                features: d,
            },
            x,
            y,
        )
    }

    #[test]
    fn parallel_training_learns() {
        let (p, x, y) = provider(400, 8, 40);
        let mut nn = NeuralNet::new(8, &[16], 1, 4);
        let config = MgdConfig {
            epochs: 60,
            lr: 0.6,
            ..Default::default()
        };
        train_nn_parallel(&mut nn, &p, &config, 4);
        let eval = Scheme::Den.encode(&x);
        let targets = targets_for_nn(&y, 1);
        let acc = nn.accuracy(&eval, &targets);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn single_worker_matches_sequential() {
        // workers = 1 must equal plain sequential MGD exactly.
        let (p, _, _) = provider(100, 6, 25);
        let config = MgdConfig {
            epochs: 3,
            lr: 0.4,
            ..Default::default()
        };
        let mut a = NeuralNet::new(6, &[8], 1, 7);
        let mut b = a.clone();
        train_nn_parallel(&mut a, &p, &config, 1);
        for _ in 0..config.epochs {
            for i in 0..p.num_batches() {
                p.visit(i, &mut |batch, labels| {
                    let t = targets_for_nn(labels, 1);
                    b.update_batch(batch, &t, config.lr);
                });
            }
        }
        for (wa, wb) in a.weights.iter().zip(&b.weights) {
            assert!(wa.max_abs_diff(wb) < 1e-12);
        }
    }

    #[test]
    fn parallel_training_is_deterministic() {
        // Same seed and worker count ⇒ bitwise-identical weights, no
        // matter how the OS schedules the worker threads: deltas are
        // applied in worker order after each round's barrier.
        let (p, _, _) = provider(200, 8, 20);
        let config = MgdConfig {
            epochs: 4,
            lr: 0.5,
            ..Default::default()
        };
        for workers in [1usize, 4] {
            let run = || {
                let mut nn = NeuralNet::new(8, &[12], 1, 5);
                train_nn_parallel(&mut nn, &p, &config, workers);
                nn
            };
            let a = run();
            let b = run();
            for (wa, wb) in a.weights.iter().zip(&b.weights) {
                assert_eq!(wa.data(), wb.data(), "workers={workers}");
            }
            for (ba, bb) in a.biases.iter().zip(&b.biases) {
                assert_eq!(ba, bb, "workers={workers}");
            }
        }
    }

    #[test]
    fn workspace_reuse_no_per_round_allocation() {
        // 8 batches × 5 epochs = 40 worker executions; each of the 4
        // slots allocates its replica/workspace/delta buffers exactly
        // once, every later execution reuses them.
        let (p, _, _) = provider(160, 6, 20);
        assert_eq!(p.num_batches(), 8);
        let config = MgdConfig {
            epochs: 5,
            lr: 0.3,
            ..Default::default()
        };
        let mut nn = NeuralNet::new(6, &[8], 1, 11);
        let report = train_nn_parallel_report(&mut nn, &p, &config, 4);
        assert_eq!(report.rounds, 10); // ceil(8 / 4) rounds × 5 epochs
        assert_eq!(report.workspace_allocs, 4);
        assert_eq!(report.workspace_reuses, 40 - 4);
        assert!(report.train_time > Duration::ZERO);
    }
}
