//! The MGD training engine (§2.1.2): mini-batch stochastic gradient descent
//! over a sequence of (possibly compressed) mini-batches.
//!
//! Shuffle-once (§2.1.3): providers are built from data shuffled once
//! upfront; every epoch then visits the mini-batches in the same order, as
//! in Bismarck and the paper's harness.

use crate::losses::LossKind;
use crate::models::{LinearModel, NeuralNet, OneVsRest};
use crate::workspace::ExecWorkspace;
use std::time::{Duration, Instant};
use toc_formats::AnyBatch;
use toc_linalg::DenseMatrix;

/// Source of labeled mini-batches. The callback style lets in-memory
/// providers lend borrowed batches while out-of-core providers materialize
/// them from disk per visit (the IO cost the paper measures).
pub trait BatchProvider {
    /// Number of mini-batches per epoch.
    fn num_batches(&self) -> usize;
    /// Number of feature columns.
    fn num_features(&self) -> usize;
    /// Visit batch `idx`. Labels are `±1` for binary tasks and the class
    /// index (as `f64`) for multiclass tasks.
    fn visit(&self, idx: usize, f: &mut dyn FnMut(&AnyBatch, &[f64]));

    /// Epoch-boundary feedback: the trainer calls this after every full
    /// pass over the batches, once all of that epoch's visits have
    /// returned. Out-of-core providers use it to act on what the epoch's
    /// visit stream taught them — the adaptive spill store re-packs hot
    /// batches onto the shards it measured fastest. Must not change any
    /// batch's *content*: training results are compared bit-identically
    /// across providers. Default: no-op.
    fn end_epoch(&self) {}
}

/// Trivial in-memory provider over pre-encoded batches.
pub struct MemoryProvider {
    pub batches: Vec<(AnyBatch, Vec<f64>)>,
    pub features: usize,
}

impl BatchProvider for MemoryProvider {
    fn num_batches(&self) -> usize {
        self.batches.len()
    }
    fn num_features(&self) -> usize {
        self.features
    }
    fn visit(&self, idx: usize, f: &mut dyn FnMut(&AnyBatch, &[f64])) {
        let (b, y) = &self.batches[idx];
        f(b, y);
    }
}

/// Model family to train (the paper's three workloads, §5.3).
#[derive(Clone, Debug)]
pub enum ModelSpec {
    /// Generalized linear model with the given loss (LR = Logistic,
    /// SVM = Hinge, Linear regression = Squared).
    Linear(LossKind),
    /// One-vs-rest multiclass linear models.
    OneVsRest { loss: LossKind, classes: usize },
    /// Feed-forward NN with the given hidden layers and output units.
    NeuralNet { hidden: Vec<usize>, outputs: usize },
}

impl ModelSpec {
    /// Deterministic fresh-model construction for `features` input
    /// columns. Shared by [`Trainer::train`] and the multi-tenant job
    /// server so a job's model starts from bit-identical parameters no
    /// matter which entry point built it (`seed` only matters for the NN
    /// family; linear models start at zero).
    pub fn init(&self, features: usize, seed: u64) -> TrainedModel {
        match self {
            ModelSpec::Linear(loss) => TrainedModel::Linear(LinearModel::new(features, *loss)),
            ModelSpec::OneVsRest { loss, classes } => {
                TrainedModel::OneVsRest(OneVsRest::new(features, *classes, *loss))
            }
            ModelSpec::NeuralNet { hidden, outputs } => {
                TrainedModel::NeuralNet(NeuralNet::new(features, hidden, *outputs, seed))
            }
        }
    }
}

/// A trained model of any family.
#[derive(Clone, Debug)]
pub enum TrainedModel {
    Linear(LinearModel),
    OneVsRest(OneVsRest),
    NeuralNet(NeuralNet),
}

impl TrainedModel {
    /// Every learned parameter, flattened in a deterministic order. Two
    /// runs trained on byte-identical batch streams must produce
    /// *bit-identical* vectors here — the cross-store determinism and
    /// fault-injection suites compare training runs with `==`, not with a
    /// tolerance, because out-of-core reads must never perturb the math.
    pub fn weights(&self) -> Vec<f64> {
        match self {
            TrainedModel::Linear(m) => m.w.clone(),
            TrainedModel::OneVsRest(m) => m
                .models
                .iter()
                .flat_map(|lm| lm.w.iter().copied())
                .collect(),
            TrainedModel::NeuralNet(nn) => nn
                .weights
                .iter()
                .flat_map(|w| w.data().iter().copied())
                .chain(nn.biases.iter().flat_map(|b| b.iter().copied()))
                .collect(),
        }
    }

    /// Classification error rate on a labeled batch (1 − accuracy).
    pub fn error_rate(&mut self, batch: &AnyBatch, labels: &[f64]) -> f64 {
        match self {
            TrainedModel::Linear(m) => 1.0 - m.accuracy(batch, labels),
            TrainedModel::OneVsRest(m) => {
                let idx: Vec<usize> = labels.iter().map(|&l| l as usize).collect();
                1.0 - m.accuracy(batch, &idx)
            }
            TrainedModel::NeuralNet(nn) => {
                let targets = targets_for_nn(labels, nn.outputs);
                1.0 - nn.accuracy(batch, &targets)
            }
        }
    }
}

/// Build the NN target matrix from provider labels.
pub fn targets_for_nn(labels: &[f64], outputs: usize) -> DenseMatrix {
    let mut out = DenseMatrix::default();
    targets_for_nn_into(labels, outputs, &mut out);
    out
}

/// [`targets_for_nn`] into a caller-owned matrix (reshaped as needed).
pub fn targets_for_nn_into(labels: &[f64], outputs: usize, out: &mut DenseMatrix) {
    out.reset(labels.len(), outputs);
    if outputs == 1 {
        // ±1 -> {0, 1} probability of the positive class.
        for (o, &y) in out.data_mut().iter_mut().zip(labels) {
            *o = (y + 1.0) / 2.0;
        }
    } else {
        for (r, &l) in labels.iter().enumerate() {
            out.set(r, l as usize, 1.0);
        }
    }
}

/// Training hyper-parameters.
#[derive(Clone, Debug)]
pub struct MgdConfig {
    /// Number of passes over all mini-batches.
    pub epochs: usize,
    /// Learning rate λ.
    pub lr: f64,
    /// Seed for model initialization.
    pub seed: u64,
    /// If true, record the error rate on the evaluation set after every
    /// epoch (costs one extra pass over `eval`).
    pub record_curve: bool,
    /// If true, visit mini-batches in a fresh pseudo-random order each
    /// epoch. This is the cheap middle ground between shuffle-once and
    /// shuffle-always (§2.1.3): batch *contents* are fixed at encode time,
    /// but the visit order is re-randomized per epoch at zero IO cost.
    pub shuffle_batches: bool,
}

impl Default for MgdConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            lr: 0.1,
            seed: 42,
            record_curve: false,
            shuffle_batches: false,
        }
    }
}

/// One recorded point of the training trajectory.
#[derive(Clone, Debug)]
pub struct CurvePoint {
    pub epoch: usize,
    pub elapsed: Duration,
    pub error_rate: f64,
}

/// Result of a training run.
pub struct TrainReport {
    pub model: TrainedModel,
    /// Total wall-clock training time (excludes curve evaluation, matching
    /// the paper's "training time does not include compression time").
    pub train_time: Duration,
    /// Error-rate trajectory (only when `record_curve`).
    pub curve: Vec<CurvePoint>,
}

/// One completed window of an online training run
/// ([`Trainer::train_online`]).
#[derive(Clone, Debug)]
pub struct WindowPoint {
    /// Window ordinal, starting at 1.
    pub window: usize,
    /// Batch indices this window consumed: `[start, end)`.
    pub start: usize,
    pub end: usize,
    /// Row-weighted prequential (test-then-train) error: every batch is
    /// evaluated *before* the model steps on it, so the window measures
    /// generalization to data the model had not seen at that point.
    pub error_rate: f64,
    /// Cumulative compute time when the window closed.
    pub elapsed: Duration,
}

/// Result of an online training run ([`Trainer::train_online`]).
pub struct OnlineReport {
    pub model: TrainedModel,
    /// One point per closed window (the final, possibly partial window
    /// included).
    pub windows: Vec<WindowPoint>,
    /// Batches consumed in total.
    pub consumed: usize,
    /// Windows that closed while the stream was still live (`more()`
    /// true at the boundary) — the trainer-kept-up liveness signal the
    /// `ingest_scaling` bench gates on. Timing-dependent by nature;
    /// never feeds back into training.
    pub windows_during_ingest: usize,
    /// Total compute time (batch evaluation + gradient steps; excludes
    /// time spent waiting for the stream to grow).
    pub train_time: Duration,
}

/// The MGD trainer.
pub struct Trainer {
    pub config: MgdConfig,
}

impl Trainer {
    pub fn new(config: MgdConfig) -> Self {
        Self { config }
    }

    /// Run MGD for `spec` over `data`. `eval` (batch, labels) is used for
    /// the error curve when `record_curve` is set.
    pub fn train(
        &self,
        spec: &ModelSpec,
        data: &dyn BatchProvider,
        eval: Option<(&AnyBatch, &[f64])>,
    ) -> TrainReport {
        let mut model = spec.init(data.num_features(), self.config.seed);

        let mut curve = Vec::new();
        let mut train_time = Duration::ZERO;
        let mut order: Vec<usize> = (0..data.num_batches()).collect();
        // One workspace for the whole run: after the first epoch warms the
        // buffers up, the steady-state gradient path allocates nothing.
        let mut ws = ExecWorkspace::new();
        for epoch in 0..self.config.epochs {
            if self.config.shuffle_batches {
                permute(
                    &mut order,
                    self.config.seed ^ (epoch as u64).wrapping_mul(0x9E37),
                );
            }
            let t0 = Instant::now();
            for &i in &order {
                data.visit(i, &mut |batch, labels| {
                    step_ws(&mut model, batch, labels, self.config.lr, &mut ws);
                });
            }
            train_time += t0.elapsed();
            // Visit-order feedback to the provider (adaptive spill stores
            // rebalance here). Excluded from `train_time` like the curve
            // evaluation: it is maintenance between epochs, not the
            // gradient path the paper times.
            data.end_epoch();
            if self.config.record_curve {
                if let Some((eb, ey)) = eval {
                    curve.push(CurvePoint {
                        epoch: epoch + 1,
                        elapsed: train_time,
                        error_rate: model.error_rate(eb, ey),
                    });
                }
            }
        }
        TrainReport {
            model,
            train_time,
            curve,
        }
    }

    /// Online MGD over a *growing* provider: batches are consumed in
    /// arrival (index) order — for a streaming store that is exactly the
    /// order ingest sealed them — each stepped on once, with prequential
    /// loss reported per fixed-size window of `window_batches`. `more()`
    /// answers "may the stream still grow?": while it returns true the
    /// trainer polls [`BatchProvider::num_batches`] for newly sealed
    /// batches instead of stopping; once false, the remaining sealed
    /// batches drain and training ends (a final partial window is
    /// recorded). Every window boundary fires
    /// [`BatchProvider::end_epoch`] — a window is the online analog of
    /// an epoch — so an adaptive streaming store rebalances mid-stream.
    ///
    /// Deterministic in the consumed batch sequence: arrival *timing*
    /// (how consumption interleaves with ingest, how often the loop
    /// polls) affects only the `windows_during_ingest` liveness counter,
    /// never which batch is consumed when — so an online run over a
    /// streaming store lands bit-identically with one over the same
    /// batches fully materialized (the determinism suite's streaming
    /// leg).
    pub fn train_online(
        &self,
        spec: &ModelSpec,
        data: &dyn BatchProvider,
        window_batches: usize,
        more: &mut dyn FnMut() -> bool,
    ) -> OnlineReport {
        assert!(window_batches > 0, "window must hold at least one batch");
        let mut model = spec.init(data.num_features(), self.config.seed);
        let mut ws = ExecWorkspace::new();
        let mut windows = Vec::new();
        let mut train_time = Duration::ZERO;
        let mut windows_during_ingest = 0usize;
        let mut next = 0usize;
        let mut window_start = 0usize;
        let mut err_rows = 0.0f64;
        let mut rows = 0usize;
        let close_window = |next: usize,
                            window_start: &mut usize,
                            err_rows: &mut f64,
                            rows: &mut usize,
                            train_time: Duration,
                            windows: &mut Vec<WindowPoint>,
                            windows_during_ingest: &mut usize,
                            live: bool| {
            windows.push(WindowPoint {
                window: windows.len() + 1,
                start: *window_start,
                end: next,
                error_rate: if *rows > 0 {
                    *err_rows / *rows as f64
                } else {
                    0.0
                },
                elapsed: train_time,
            });
            if live {
                *windows_during_ingest += 1;
            }
            *window_start = next;
            *err_rows = 0.0;
            *rows = 0;
            data.end_epoch();
        };
        loop {
            if next < data.num_batches() {
                let t0 = Instant::now();
                data.visit(next, &mut |batch, labels| {
                    // Test-then-train: evaluate before stepping.
                    err_rows += model.error_rate(batch, labels) * labels.len() as f64;
                    rows += labels.len();
                    step_ws(&mut model, batch, labels, self.config.lr, &mut ws);
                });
                train_time += t0.elapsed();
                next += 1;
                if next - window_start == window_batches {
                    let live = more();
                    close_window(
                        next,
                        &mut window_start,
                        &mut err_rows,
                        &mut rows,
                        train_time,
                        &mut windows,
                        &mut windows_during_ingest,
                        live,
                    );
                }
                continue;
            }
            if more() {
                // Caught up with a live stream: wait for the next seal.
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
            // Stream ended; one last check catches batches sealed between
            // the num_batches poll and the more() answer.
            if next >= data.num_batches() {
                break;
            }
        }
        if next > window_start {
            close_window(
                next,
                &mut window_start,
                &mut err_rows,
                &mut rows,
                train_time,
                &mut windows,
                &mut windows_during_ingest,
                false,
            );
        }
        OnlineReport {
            model,
            windows,
            consumed: next,
            windows_during_ingest,
            train_time,
        }
    }
}

/// Fisher–Yates shuffle driven by a splitmix-style generator (no RNG crate
/// needed in the hot path; determinism per (seed, epoch) keeps runs
/// reproducible).
fn permute(order: &mut [usize], seed: u64) {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..order.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
}

/// Apply one mini-batch update to any model family.
pub fn step(model: &mut TrainedModel, batch: &AnyBatch, labels: &[f64], lr: f64) {
    step_ws(model, batch, labels, lr, &mut ExecWorkspace::new());
}

/// [`step`] with caller-owned scratch: label/target staging and every
/// model-level buffer come from `ws`, so the per-batch gradient path is
/// allocation-free in steady state.
pub fn step_ws(
    model: &mut TrainedModel,
    batch: &AnyBatch,
    labels: &[f64],
    lr: f64,
    ws: &mut ExecWorkspace,
) {
    match model {
        TrainedModel::Linear(m) => m.update_batch_ws(batch, labels, lr, ws),
        TrainedModel::OneVsRest(m) => {
            // Take the staging buffer out so `ws` can be lent onward.
            let mut idx = std::mem::take(&mut ws.class_idx);
            idx.clear();
            idx.extend(labels.iter().map(|&l| l as usize));
            m.update_batch_ws(batch, &idx, lr, ws);
            ws.class_idx = idx;
        }
        TrainedModel::NeuralNet(nn) => {
            let mut targets = std::mem::take(&mut ws.targets);
            targets_for_nn_into(labels, nn.outputs, &mut targets);
            nn.update_batch_ws(batch, &targets, lr, ws);
            ws.targets = targets;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use toc_formats::Scheme;

    fn make_provider(
        scheme: Scheme,
        n: usize,
        d: usize,
        batch_rows: usize,
        seed: u64,
    ) -> (MemoryProvider, AnyBatch, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut x = DenseMatrix::zeros(n, d);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let mut f = 0.0;
            #[allow(clippy::needless_range_loop)] // c indexes x, truth in lockstep
            for c in 0..d {
                let v = if rng.gen::<f64>() < 0.5 {
                    (rng.gen_range(0..3) as f64) * 0.5 + 0.5
                } else {
                    0.0
                };
                x.set(r, c, v);
                f += v * truth[c];
            }
            y.push(if f >= 0.0 { 1.0 } else { -1.0 });
        }
        let mut batches = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + batch_rows).min(n);
            let xb = x.slice_rows(start, end);
            batches.push((scheme.encode(&xb), y[start..end].to_vec()));
            start = end;
        }
        let full = scheme.encode(&x);
        (
            MemoryProvider {
                batches,
                features: d,
            },
            full,
            y,
        )
    }

    #[test]
    fn mgd_trains_logistic_regression() {
        let (provider, eval_b, eval_y) = make_provider(Scheme::Toc, 500, 12, 50, 3);
        let trainer = Trainer::new(MgdConfig {
            epochs: 30,
            lr: 0.3,
            ..Default::default()
        });
        let mut report = trainer.train(&ModelSpec::Linear(LossKind::Logistic), &provider, None);
        let err = report.model.error_rate(&eval_b, &eval_y);
        assert!(err < 0.1, "error {err}");
    }

    #[test]
    fn curve_is_recorded_and_monotone_ish() {
        let (provider, eval_b, eval_y) = make_provider(Scheme::Csr, 400, 10, 40, 5);
        let trainer = Trainer::new(MgdConfig {
            epochs: 15,
            lr: 0.3,
            record_curve: true,
            ..Default::default()
        });
        let report = trainer.train(
            &ModelSpec::Linear(LossKind::Hinge),
            &provider,
            Some((&eval_b, &eval_y)),
        );
        assert_eq!(report.curve.len(), 15);
        let first = report.curve.first().unwrap().error_rate;
        let last = report.curve.last().unwrap().error_rate;
        assert!(last <= first + 0.02, "no improvement: {first} -> {last}");
    }

    #[test]
    fn identical_models_across_schemes() {
        // MGD is format-agnostic: same batches, different encodings, same
        // trained model (up to fp tolerance).
        let mut finals: Vec<Vec<f64>> = Vec::new();
        for scheme in [
            Scheme::Den,
            Scheme::Toc,
            Scheme::Cvi,
            Scheme::Gzip,
            Scheme::Cla,
        ] {
            let (provider, _, _) = make_provider(scheme, 200, 8, 25, 7);
            let trainer = Trainer::new(MgdConfig {
                epochs: 5,
                lr: 0.2,
                ..Default::default()
            });
            let report = trainer.train(&ModelSpec::Linear(LossKind::Logistic), &provider, None);
            match report.model {
                TrainedModel::Linear(m) => finals.push(m.w),
                _ => unreachable!(),
            }
        }
        for other in &finals[1..] {
            for (a, b) in finals[0].iter().zip(other) {
                assert!((a - b).abs() < 1e-8, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn nn_trains_through_engine() {
        let (provider, eval_b, eval_y) = make_provider(Scheme::Toc, 300, 6, 30, 13);
        let trainer = Trainer::new(MgdConfig {
            epochs: 60,
            lr: 0.5,
            ..Default::default()
        });
        let mut report = trainer.train(
            &ModelSpec::NeuralNet {
                hidden: vec![16, 8],
                outputs: 1,
            },
            &provider,
            None,
        );
        let err = report.model.error_rate(&eval_b, &eval_y);
        assert!(err < 0.15, "error {err}");
    }

    #[test]
    fn shuffled_batch_order_still_learns_and_is_deterministic() {
        let (provider, eval_b, eval_y) = make_provider(Scheme::Toc, 300, 8, 30, 23);
        let config = MgdConfig {
            epochs: 10,
            lr: 0.3,
            shuffle_batches: true,
            ..Default::default()
        };
        let run = |cfg: &MgdConfig| {
            let trainer = Trainer::new(cfg.clone());
            let report = trainer.train(&ModelSpec::Linear(LossKind::Logistic), &provider, None);
            match report.model {
                TrainedModel::Linear(m) => m.w,
                _ => unreachable!(),
            }
        };
        let w1 = run(&config);
        let w2 = run(&config);
        assert_eq!(w1, w2, "same seed must give identical runs");
        let mut m = TrainedModel::Linear(crate::models::LinearModel::new(8, LossKind::Logistic));
        if let TrainedModel::Linear(lm) = &mut m {
            lm.w = w1.clone();
        }
        let err = m.error_rate(&eval_b, &eval_y);
        assert!(err < 0.15, "error {err}");
        // A different seed gives a different (but also working) model.
        let w3 = run(&MgdConfig { seed: 7, ..config });
        assert_ne!(w1, w3);
    }

    #[test]
    fn weights_are_deterministic_and_cover_every_family() {
        let (provider, _, _) = make_provider(Scheme::Toc, 200, 6, 25, 11);
        let trainer = Trainer::new(MgdConfig {
            epochs: 3,
            lr: 0.2,
            ..Default::default()
        });
        // Linear: weights == w.
        let r = trainer.train(&ModelSpec::Linear(LossKind::Logistic), &provider, None);
        assert_eq!(r.model.weights().len(), 6);
        let r2 = trainer.train(&ModelSpec::Linear(LossKind::Logistic), &provider, None);
        assert_eq!(r.model.weights(), r2.model.weights());
        // NN: weights covers every layer matrix and bias.
        let spec = ModelSpec::NeuralNet {
            hidden: vec![4],
            outputs: 1,
        };
        let r = trainer.train(&spec, &provider, None);
        assert_eq!(r.model.weights().len(), (6 * 4 + 4) + (4 + 1));
        let r2 = trainer.train(&spec, &provider, None);
        assert_eq!(r.model.weights(), r2.model.weights());
    }

    #[test]
    fn online_pass_matches_offline_epoch_and_windows_tile_the_stream() {
        let (provider, _, _) = make_provider(Scheme::Toc, 300, 8, 30, 23); // 10 batches
        let trainer = Trainer::new(MgdConfig {
            epochs: 1,
            lr: 0.2,
            ..Default::default()
        });
        let spec = ModelSpec::Linear(LossKind::Logistic);
        let online = trainer.train_online(&spec, &provider, 4, &mut || false);
        assert_eq!(online.consumed, 10);
        assert_eq!(online.windows.len(), 3); // 4 + 4 + partial 2
        assert_eq!(online.windows[0].start, 0);
        assert_eq!(online.windows[0].end, 4);
        assert_eq!(online.windows.last().unwrap().end, 10);
        assert!(online
            .windows
            .iter()
            .all(|w| (0.0..=1.0).contains(&w.error_rate)));
        assert_eq!(online.windows_during_ingest, 0);
        // A fixed provider consumed once in index order is exactly one
        // unshuffled offline epoch: bit-identical weights.
        let offline = trainer.train(&spec, &provider, None);
        assert_eq!(online.model.weights(), offline.model.weights());
        // Same seed, same stream: bit-identical replay.
        let again = trainer.train_online(&spec, &provider, 4, &mut || false);
        assert_eq!(online.model.weights(), again.model.weights());
        let curve = |r: &OnlineReport| r.windows.iter().map(|w| w.error_rate).collect::<Vec<_>>();
        assert_eq!(curve(&online), curve(&again));
    }

    #[test]
    fn sgd_and_bgd_are_batch_size_extremes() {
        // |B| = 1 (SGD) and |B| = n (BGD) must both run through the same
        // engine (§2.1.2: MGD covers the spectrum).
        for batch_rows in [1, 200] {
            let (provider, eval_b, eval_y) = make_provider(Scheme::Csr, 200, 6, batch_rows, 17);
            let trainer = Trainer::new(MgdConfig {
                epochs: 10,
                lr: 0.2,
                ..Default::default()
            });
            let mut report = trainer.train(&ModelSpec::Linear(LossKind::Logistic), &provider, None);
            let err = report.model.error_rate(&eval_b, &eval_y);
            assert!(err < 0.25, "batch_rows={batch_rows} error {err}");
        }
    }
}
