//! ML models trained by MGD over compressed mini-batches.
//!
//! Each model consumes batches through the [`MatrixBatch`] trait, so the
//! same training code runs on DEN, CSR, CVI, DVI, CLA, GC and TOC batches.
//! The matrix operations used per model reproduce Table 1 of the paper:
//!
//! | model | ops |
//! |-------|-----|
//! | Linear/Logistic regression, SVM | `A·v`, `v·A` |
//! | Neural network | `A·M`, `M·A` |

use crate::losses::{sigmoid, softmax_inplace, LossKind};
use crate::workspace::ExecWorkspace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use toc_formats::MatrixBatch;
use toc_linalg::dense::reset_vec;
use toc_linalg::DenseMatrix;

/// Which core matrix operations a model invoked (used by the Table 1
/// conformance test and by harness instrumentation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpTrace {
    pub matvec: usize,
    pub vecmat: usize,
    pub matmat: usize,
    pub matmat_left: usize,
}

/// A generalized linear model: linear regression, logistic regression, or
/// SVM depending on [`LossKind`].
#[derive(Clone, Debug)]
pub struct LinearModel {
    /// Weight vector (`d` features; no intercept — generators emit a bias
    /// column when one is wanted).
    pub w: Vec<f64>,
    pub loss: LossKind,
    pub trace: OpTrace,
}

impl LinearModel {
    /// Zero-initialized model for `d` features.
    pub fn new(d: usize, loss: LossKind) -> Self {
        Self {
            w: vec![0.0; d],
            loss,
            trace: OpTrace::default(),
        }
    }

    /// One MGD step (Equation 2): `h ← h − λ (1/|B|) Σ ∂ℓ/∂h`, evaluated
    /// with one `A·v` and one `v·A` (Equation 3).
    ///
    /// Thin wrapper over [`Self::update_batch_ws`] with a throwaway
    /// workspace; steady-state training should hold an [`ExecWorkspace`]
    /// and call the `_ws` variant directly.
    pub fn update_batch(&mut self, batch: &dyn MatrixBatch, y: &[f64], lr: f64) {
        self.update_batch_ws(batch, y, lr, &mut ExecWorkspace::new());
    }

    /// [`Self::update_batch`] with caller-owned scratch: the prediction,
    /// coefficient and gradient buffers (plus the kernels' internal
    /// staging) come from `ws`, so repeated steps allocate nothing.
    pub fn update_batch_ws(
        &mut self,
        batch: &dyn MatrixBatch,
        y: &[f64],
        lr: f64,
        ws: &mut ExecWorkspace,
    ) {
        debug_assert_eq!(batch.rows(), y.len());
        debug_assert_eq!(batch.cols(), self.w.len());
        batch.matvec_into_ws(&self.w, &mut ws.pred, &mut ws.exec);
        self.trace.matvec += 1;
        let inv = 1.0 / y.len() as f64;
        reset_vec(&mut ws.coef, y.len());
        for ((c, &f), &yy) in ws.coef.iter_mut().zip(&ws.pred).zip(y) {
            *c = self.loss.dloss(f, yy) * inv;
        }
        batch.vecmat_into_ws(&ws.coef, &mut ws.grad, &mut ws.exec);
        self.trace.vecmat += 1;
        for (w, d) in self.w.iter_mut().zip(&ws.grad) {
            *w -= lr * d;
        }
    }

    /// Decision values `A·w`.
    pub fn decision(&self, batch: &dyn MatrixBatch) -> Vec<f64> {
        batch.matvec(&self.w)
    }

    /// Mean loss over a batch.
    pub fn mean_loss(&self, batch: &dyn MatrixBatch, y: &[f64]) -> f64 {
        let preds = batch.matvec(&self.w);
        preds
            .iter()
            .zip(y)
            .map(|(&f, &yy)| self.loss.loss(f, yy))
            .sum::<f64>()
            / y.len() as f64
    }

    /// Binary accuracy with ±1 labels (sign rule).
    pub fn accuracy(&self, batch: &dyn MatrixBatch, y: &[f64]) -> f64 {
        let preds = self.decision(batch);
        let correct = preds
            .iter()
            .zip(y)
            .filter(|(&f, &yy)| (f >= 0.0 && yy > 0.0) || (f < 0.0 && yy < 0.0))
            .count();
        correct as f64 / y.len() as f64
    }
}

/// One-versus-rest multiclass wrapper (§5.3 uses it for LR and SVM on
/// multi-class outputs).
#[derive(Clone, Debug)]
pub struct OneVsRest {
    pub models: Vec<LinearModel>,
}

impl OneVsRest {
    pub fn new(d: usize, classes: usize, loss: LossKind) -> Self {
        Self {
            models: (0..classes).map(|_| LinearModel::new(d, loss)).collect(),
        }
    }

    /// Update all per-class models on one batch. `labels[i]` is the class
    /// index of row `i`.
    pub fn update_batch(&mut self, batch: &dyn MatrixBatch, labels: &[usize], lr: f64) {
        self.update_batch_ws(batch, labels, lr, &mut ExecWorkspace::new());
    }

    /// [`Self::update_batch`] with caller-owned scratch (see
    /// [`LinearModel::update_batch_ws`]).
    pub fn update_batch_ws(
        &mut self,
        batch: &dyn MatrixBatch,
        labels: &[usize],
        lr: f64,
        ws: &mut ExecWorkspace,
    ) {
        // Take the ±1 staging buffer out so `ws` can be lent to the
        // per-class updates.
        let mut y = std::mem::take(&mut ws.ovr_y);
        reset_vec(&mut y, labels.len());
        for (k, model) in self.models.iter_mut().enumerate() {
            for (yy, &l) in y.iter_mut().zip(labels) {
                *yy = if l == k { 1.0 } else { -1.0 };
            }
            model.update_batch_ws(batch, &y, lr, ws);
        }
        ws.ovr_y = y;
    }

    /// Argmax prediction.
    pub fn predict(&self, batch: &dyn MatrixBatch) -> Vec<usize> {
        let scores: Vec<Vec<f64>> = self.models.iter().map(|m| m.decision(batch)).collect();
        (0..batch.rows())
            .map(|r| {
                let mut best = 0;
                for k in 1..scores.len() {
                    if scores[k][r] > scores[best][r] {
                        best = k;
                    }
                }
                best
            })
            .collect()
    }

    /// Multiclass accuracy.
    pub fn accuracy(&self, batch: &dyn MatrixBatch, labels: &[usize]) -> f64 {
        let preds = self.predict(batch);
        let ok = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        ok as f64 / labels.len() as f64
    }
}

/// Feed-forward neural network (§5.3: two hidden layers of 200 and 50
/// sigmoid units by default; sigmoid output for binary targets, softmax for
/// multi-class), trained with cross-entropy.
///
/// Only the input layer touches the (compressed) mini-batch: `A·W1` forward
/// and `δ1ᵀ·A` backward — the `A·M` and `M·A` operations of Table 1.
#[derive(Clone, Debug)]
pub struct NeuralNet {
    /// Layer weight matrices; `weights[l]` maps layer `l` to `l+1`.
    pub weights: Vec<DenseMatrix>,
    /// Per-layer bias vectors.
    pub biases: Vec<Vec<f64>>,
    /// Output units (1 = binary sigmoid; >1 = softmax).
    pub outputs: usize,
    pub trace: OpTrace,
}

/// Activations captured during a forward pass.
pub struct Forward {
    /// Post-activation values per hidden layer.
    pub hidden: Vec<DenseMatrix>,
    /// Output probabilities (`rows × outputs`).
    pub probs: DenseMatrix,
}

impl NeuralNet {
    /// Xavier-style random initialization.
    pub fn new(d: usize, hidden: &[usize], outputs: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sizes = vec![d];
        sizes.extend_from_slice(hidden);
        sizes.push(outputs);
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for win in sizes.windows(2) {
            let (fan_in, fan_out) = (win[0], win[1]);
            let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
            weights.push(DenseMatrix::from_vec(
                fan_in,
                fan_out,
                (0..fan_in * fan_out)
                    .map(|_| rng.gen_range(-bound..bound))
                    .collect(),
            ));
            biases.push(vec![0.0; fan_out]);
        }
        Self {
            weights,
            biases,
            outputs,
            trace: OpTrace::default(),
        }
    }

    fn add_bias_sigmoid(z: &mut DenseMatrix, b: &[f64]) {
        for r in 0..z.rows() {
            for (v, &bb) in z.row_mut(r).iter_mut().zip(b) {
                *v = sigmoid(*v + bb);
            }
        }
    }

    /// Forward pass over a (compressed) batch.
    ///
    /// Thin wrapper over [`Self::forward_ws`] with a throwaway workspace;
    /// the returned [`Forward`] owns its activations.
    pub fn forward(&mut self, batch: &dyn MatrixBatch) -> Forward {
        let mut ws = ExecWorkspace::new();
        self.forward_ws(batch, &mut ws);
        let n_layers = self.weights.len();
        let probs = ws.acts[n_layers - 1].clone();
        let hidden = ws.acts[..n_layers - 1].to_vec();
        Forward { hidden, probs }
    }

    /// Forward pass into the workspace: after the call, `ws.acts[l]` holds
    /// the post-activation values of layer `l` and `ws.acts[n_layers - 1]`
    /// the output probabilities. No allocation in steady state.
    pub fn forward_ws(&mut self, batch: &dyn MatrixBatch, ws: &mut ExecWorkspace) {
        let n_layers = self.weights.len();
        ws.ensure_layers(n_layers);
        // Input layer: A · W1 runs on the compressed representation.
        batch.matmat_into_ws(&self.weights[0], &mut ws.acts[0], &mut ws.exec);
        self.trace.matmat += 1;
        Self::add_bias_sigmoid(&mut ws.acts[0], &self.biases[0]);
        for l in 1..n_layers - 1 {
            let (prev, rest) = ws.acts.split_at_mut(l);
            prev[l - 1].matmat_into(&self.weights[l], &mut rest[0]);
            Self::add_bias_sigmoid(&mut rest[0], &self.biases[l]);
        }
        // Output layer.
        let (prev, rest) = ws.acts.split_at_mut(n_layers - 1);
        let last_hidden = &prev[n_layers - 2];
        let out = &mut rest[0];
        last_hidden.matmat_into(&self.weights[n_layers - 1], out);
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (v, &bb) in row.iter_mut().zip(&self.biases[n_layers - 1]) {
                *v += bb;
            }
            if self.outputs == 1 {
                row[0] = sigmoid(row[0]);
            } else {
                softmax_inplace(row);
            }
        }
    }

    /// One MGD step with cross-entropy loss. For binary targets
    /// (`outputs == 1`) labels are 0/1 probabilities of the positive class;
    /// for multiclass they are class indexes encoded as one-hot in
    /// `targets` (`rows × outputs`).
    ///
    /// Thin wrapper over [`Self::update_batch_ws`] with a throwaway
    /// workspace.
    pub fn update_batch(&mut self, batch: &dyn MatrixBatch, targets: &DenseMatrix, lr: f64) {
        self.update_batch_ws(batch, targets, lr, &mut ExecWorkspace::new());
    }

    /// [`Self::update_batch`] with caller-owned scratch: activations,
    /// deltas, gradients and transposition staging all live in `ws`, so a
    /// steady-state epoch performs zero per-batch heap allocation.
    pub fn update_batch_ws(
        &mut self,
        batch: &dyn MatrixBatch,
        targets: &DenseMatrix,
        lr: f64,
        ws: &mut ExecWorkspace,
    ) {
        let n = batch.rows();
        debug_assert_eq!(targets.rows(), n);
        debug_assert_eq!(targets.cols(), self.outputs);
        self.forward_ws(batch, ws);
        let n_layers = self.weights.len();
        let inv = 1.0 / n as f64;

        // Output delta: (p - t) / n for sigmoid+logloss and softmax+CE.
        ws.delta.reset(n, self.outputs);
        {
            let probs = &ws.acts[n_layers - 1];
            for r in 0..n {
                for c in 0..self.outputs {
                    ws.delta
                        .set(r, c, (probs.get(r, c) - targets.get(r, c)) * inv);
                }
            }
        }

        // Walk layers backwards, accumulating weight/bias gradients into
        // the workspace; apply them only after the walk (gradients must be
        // taken at the pre-step weights).
        for l in (0..n_layers).rev() {
            // Gradient for W_l = activationsᵀ · delta.
            if l == 0 {
                // δ1ᵀ · A on the compressed batch (M·A), then transpose.
                ws.delta.transpose_into(&mut ws.trans);
                batch.matmat_left_into_ws(&ws.trans, &mut ws.trans2, &mut ws.exec);
                self.trace.matmat_left += 1;
                ws.trans2.transpose_into(&mut ws.grads_w[l]);
            } else {
                ws.acts[l - 1].transpose_into(&mut ws.trans);
                ws.trans.matmat_into(&ws.delta, &mut ws.grads_w[l]);
            }
            let grad_b = &mut ws.grads_b[l];
            reset_vec(grad_b, ws.delta.cols());
            for r in 0..ws.delta.rows() {
                for (gb, &d) in grad_b.iter_mut().zip(ws.delta.row(r)) {
                    *gb += d;
                }
            }
            if l > 0 {
                // delta_{l} = (delta_{l+1} · W_lᵀ) ∘ σ'(hidden_{l-1}).
                self.weights[l].transpose_into(&mut ws.trans);
                ws.delta.matmat_into(&ws.trans, &mut ws.delta2);
                let act = &ws.acts[l - 1];
                for (d, &a) in ws.delta2.data_mut().iter_mut().zip(act.data()) {
                    *d *= a * (1.0 - a);
                }
                std::mem::swap(&mut ws.delta, &mut ws.delta2);
            }
        }
        for l in 0..n_layers {
            let w = self.weights[l].data_mut();
            for (wv, gv) in w.iter_mut().zip(ws.grads_w[l].data()) {
                *wv -= lr * gv;
            }
            for (bv, gv) in self.biases[l].iter_mut().zip(&ws.grads_b[l]) {
                *bv -= lr * gv;
            }
        }
    }

    /// Mean cross-entropy loss.
    pub fn mean_loss(&mut self, batch: &dyn MatrixBatch, targets: &DenseMatrix) -> f64 {
        let fwd = self.forward(batch);
        let n = batch.rows();
        let mut total = 0.0;
        for r in 0..n {
            for c in 0..self.outputs {
                let t = targets.get(r, c);
                let p = fwd.probs.get(r, c).clamp(1e-12, 1.0 - 1e-12);
                if self.outputs == 1 {
                    total -= t * p.ln() + (1.0 - t) * (1.0 - p).ln();
                } else if t > 0.0 {
                    total -= t * p.ln();
                }
            }
        }
        total / n as f64
    }

    /// Classification accuracy. For binary outputs, threshold 0.5; for
    /// multiclass, argmax against the one-hot targets.
    pub fn accuracy(&mut self, batch: &dyn MatrixBatch, targets: &DenseMatrix) -> f64 {
        let fwd = self.forward(batch);
        let n = batch.rows();
        let mut ok = 0usize;
        for r in 0..n {
            if self.outputs == 1 {
                let pred = fwd.probs.get(r, 0) >= 0.5;
                let truth = targets.get(r, 0) >= 0.5;
                if pred == truth {
                    ok += 1;
                }
            } else {
                let row = fwd.probs.row(r);
                let mut best = 0;
                for c in 1..self.outputs {
                    if row[c] > row[best] {
                        best = c;
                    }
                }
                if targets.get(r, best) >= 0.5 {
                    ok += 1;
                }
            }
        }
        ok as f64 / n as f64
    }

    /// Encode class labels as a one-hot target matrix.
    pub fn one_hot(labels: &[usize], classes: usize) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(labels.len(), classes);
        for (r, &l) in labels.iter().enumerate() {
            t.set(r, l, 1.0);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toc_formats::Scheme;

    fn separable_data(n: usize, d: usize, seed: u64) -> (DenseMatrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut x = DenseMatrix::zeros(n, d);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let mut f = 0.0;
            #[allow(clippy::needless_range_loop)] // c indexes x, truth in lockstep
            for c in 0..d {
                // Small value pool keeps TOC happy.
                let v = if rng.gen::<f64>() < 0.4 {
                    (rng.gen_range(0..4) as f64) * 0.5
                } else {
                    0.0
                };
                x.set(r, c, v);
                f += v * truth[c];
            }
            y.push(if f >= 0.0 { 1.0 } else { -1.0 });
        }
        (x, y)
    }

    #[test]
    fn linear_gradient_matches_numeric() {
        let (x, y) = separable_data(12, 6, 3);
        let batch = Scheme::Den.encode(&x);
        for loss in [LossKind::Squared, LossKind::Logistic] {
            let mut m = LinearModel::new(6, loss);
            for w in m.w.iter_mut() {
                *w = 0.1;
            }
            // Analytic gradient via one update with lr=1.
            let mut stepped = m.clone();
            stepped.update_batch(&batch, &y, 1.0);
            let analytic: Vec<f64> = m.w.iter().zip(&stepped.w).map(|(a, b)| a - b).collect();
            // Numeric gradient of the mean loss.
            let eps = 1e-6;
            #[allow(clippy::needless_range_loop)] // k indexes weights and analytic
            for k in 0..6 {
                let mut mp = m.clone();
                mp.w[k] += eps;
                let mut mm = m.clone();
                mm.w[k] -= eps;
                let num = (mp.mean_loss(&batch, &y) - mm.mean_loss(&batch, &y)) / (2.0 * eps);
                assert!(
                    (num - analytic[k]).abs() < 1e-5,
                    "{loss:?} dim {k}: {num} vs {}",
                    analytic[k]
                );
            }
        }
    }

    #[test]
    fn linear_models_learn_separable_data() {
        let (x, y) = separable_data(400, 10, 7);
        for loss in [LossKind::Logistic, LossKind::Hinge, LossKind::Squared] {
            let mut m = LinearModel::new(10, loss);
            let batch = Scheme::Toc.encode(&x);
            for _ in 0..300 {
                m.update_batch(&batch, &y, 0.1);
            }
            let acc = m.accuracy(&batch, &y);
            assert!(acc > 0.9, "{loss:?} accuracy {acc}");
        }
    }

    #[test]
    fn training_on_toc_equals_training_on_den() {
        let (x, y) = separable_data(100, 8, 11);
        let den = Scheme::Den.encode(&x);
        let toc = Scheme::Toc.encode(&x);
        let mut m1 = LinearModel::new(8, LossKind::Logistic);
        let mut m2 = LinearModel::new(8, LossKind::Logistic);
        for _ in 0..50 {
            m1.update_batch(&den, &y, 0.2);
            m2.update_batch(&toc, &y, 0.2);
        }
        for (a, b) in m1.w.iter().zip(&m2.w) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn table1_op_usage() {
        // Table 1: GLMs use A·v and v·A; the NN input layer uses A·M and M·A.
        let (x, y) = separable_data(20, 5, 1);
        let batch = Scheme::Den.encode(&x);
        let mut lm = LinearModel::new(5, LossKind::Logistic);
        lm.update_batch(&batch, &y, 0.1);
        assert_eq!(
            lm.trace,
            OpTrace {
                matvec: 1,
                vecmat: 1,
                matmat: 0,
                matmat_left: 0
            }
        );

        let mut nn = NeuralNet::new(5, &[8, 4], 1, 0);
        let targets = DenseMatrix::from_vec(20, 1, y.iter().map(|&v| (v + 1.0) / 2.0).collect());
        nn.update_batch(&batch, &targets, 0.1);
        assert_eq!(nn.trace.matmat, 1);
        assert_eq!(nn.trace.matmat_left, 1);
        assert_eq!(nn.trace.matvec, 0);
    }

    #[test]
    fn nn_gradient_matches_numeric() {
        let (x, y) = separable_data(10, 4, 5);
        let batch = Scheme::Den.encode(&x);
        let targets = DenseMatrix::from_vec(10, 1, y.iter().map(|&v| (v + 1.0) / 2.0).collect());
        let base = NeuralNet::new(4, &[5], 1, 42);
        // Analytic via one lr=1 step.
        let mut stepped = base.clone();
        stepped.update_batch(&batch, &targets, 1.0);
        let eps = 1e-6;
        for l in 0..base.weights.len() {
            for k in 0..base.weights[l].data().len().min(8) {
                let mut p = base.clone();
                p.weights[l].data_mut()[k] += eps;
                let mut m = base.clone();
                m.weights[l].data_mut()[k] -= eps;
                let num =
                    (p.mean_loss(&batch, &targets) - m.mean_loss(&batch, &targets)) / (2.0 * eps);
                let ana = base.weights[l].data()[k] - stepped.weights[l].data()[k];
                assert!(
                    (num - ana).abs() < 1e-4,
                    "layer {l} weight {k}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn nn_learns_binary_problem() {
        let (x, y) = separable_data(300, 8, 21);
        let targets = DenseMatrix::from_vec(300, 1, y.iter().map(|&v| (v + 1.0) / 2.0).collect());
        let batch = Scheme::Toc.encode(&x);
        let mut nn = NeuralNet::new(8, &[16, 8], 1, 2);
        for _ in 0..400 {
            nn.update_batch(&batch, &targets, 0.5);
        }
        let acc = nn.accuracy(&batch, &targets);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn ovr_multiclass_learns() {
        // Three linearly separable clusters on a small value grid.
        let mut rng = StdRng::seed_from_u64(9);
        let n = 300;
        let mut x = DenseMatrix::zeros(n, 3);
        let mut labels = Vec::with_capacity(n);
        for r in 0..n {
            let k = r % 3;
            x.set(r, k, 2.0 + (rng.gen_range(0..3) as f64) * 0.5);
            labels.push(k);
        }
        let batch = Scheme::Cvi.encode(&x);
        let mut ovr = OneVsRest::new(3, 3, LossKind::Logistic);
        for _ in 0..200 {
            ovr.update_batch(&batch, &labels, 0.3);
        }
        assert!(ovr.accuracy(&batch, &labels) > 0.95);
    }

    #[test]
    fn softmax_nn_multiclass() {
        let n = 240;
        let mut x = DenseMatrix::zeros(n, 4);
        let mut labels = Vec::with_capacity(n);
        for r in 0..n {
            let k = r % 4;
            x.set(r, k, 1.5);
            labels.push(k);
        }
        let targets = NeuralNet::one_hot(&labels, 4);
        let batch = Scheme::Den.encode(&x);
        let mut nn = NeuralNet::new(4, &[12], 4, 3);
        for _ in 0..300 {
            nn.update_batch(&batch, &targets, 0.8);
        }
        assert!(nn.accuracy(&batch, &targets) > 0.95);
    }
}
