//! Image-to-column (§6, "Advanced Neural Network"): replicate each sliding
//! window of an image batch as a matrix row so that convolution becomes a
//! matrix multiplication that can run on a TOC-compressed batch.
//!
//! The paper predicts *higher* TOC ratios on the replicated matrix because
//! im2col duplicates pixels across rows — exactly the cross-row repeated
//! subsequences the logical encoding exploits.

use toc_linalg::DenseMatrix;

/// Shape of a single-channel image batch stored one image per matrix row.
#[derive(Clone, Copy, Debug)]
pub struct ImageShape {
    pub height: usize,
    pub width: usize,
}

impl ImageShape {
    /// Number of output positions for a `kh × kw` kernel at `stride`.
    pub fn out_dims(&self, kh: usize, kw: usize, stride: usize) -> (usize, usize) {
        assert!(kh <= self.height && kw <= self.width && stride >= 1);
        (
            (self.height - kh) / stride + 1,
            (self.width - kw) / stride + 1,
        )
    }
}

/// Replicate sliding windows: input is `n × (h*w)` (one image per row);
/// output is `(n * out_h * out_w) × (kh*kw)` with one window per row.
pub fn im2col(
    images: &DenseMatrix,
    shape: ImageShape,
    kh: usize,
    kw: usize,
    stride: usize,
) -> DenseMatrix {
    assert_eq!(
        images.cols(),
        shape.height * shape.width,
        "image shape mismatch"
    );
    let (oh, ow) = shape.out_dims(kh, kw, stride);
    let mut out = DenseMatrix::zeros(images.rows() * oh * ow, kh * kw);
    let mut orow = 0usize;
    for img in 0..images.rows() {
        let pixels = images.row(img);
        for oy in 0..oh {
            for ox in 0..ow {
                let dst = out.row_mut(orow);
                orow += 1;
                let y0 = oy * stride;
                let x0 = ox * stride;
                for ky in 0..kh {
                    let src = &pixels[(y0 + ky) * shape.width + x0..][..kw];
                    dst[ky * kw..(ky + 1) * kw].copy_from_slice(src);
                }
            }
        }
    }
    out
}

/// Direct (nested-loop) convolution reference for testing: returns
/// `(n * out_h * out_w) × n_kernels`, matching `im2col(...).matmat(kernels)`.
pub fn conv_direct(
    images: &DenseMatrix,
    shape: ImageShape,
    kernels: &DenseMatrix, // (kh*kw) × n_kernels
    kh: usize,
    kw: usize,
    stride: usize,
) -> DenseMatrix {
    let (oh, ow) = shape.out_dims(kh, kw, stride);
    let nk = kernels.cols();
    let mut out = DenseMatrix::zeros(images.rows() * oh * ow, nk);
    let mut orow = 0usize;
    for img in 0..images.rows() {
        let pixels = images.row(img);
        for oy in 0..oh {
            for ox in 0..ow {
                for k in 0..nk {
                    let mut acc = 0.0;
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let p = pixels[(oy * stride + ky) * shape.width + ox * stride + kx];
                            acc += p * kernels.get(ky * kw + kx, k);
                        }
                    }
                    out.set(orow, k, acc);
                }
                orow += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use toc_formats::{MatrixBatch, Scheme};

    fn toy_images(n: usize, shape: ImageShape) -> DenseMatrix {
        // Blocky images from a 3-value palette: lots of repeated windows.
        let mut m = DenseMatrix::zeros(n, shape.height * shape.width);
        for img in 0..n {
            for y in 0..shape.height {
                for x in 0..shape.width {
                    let v = (((x / 3) + (y / 3) + img) % 3) as f64 * 0.5;
                    m.set(img, y * shape.width + x, v);
                }
            }
        }
        m
    }

    #[test]
    fn out_dims() {
        let s = ImageShape {
            height: 8,
            width: 10,
        };
        assert_eq!(s.out_dims(3, 3, 1), (6, 8));
        assert_eq!(s.out_dims(2, 2, 2), (4, 5));
    }

    #[test]
    fn im2col_matmul_equals_direct_convolution() {
        let shape = ImageShape {
            height: 9,
            width: 9,
        };
        let images = toy_images(4, shape);
        let kernels = DenseMatrix::from_vec(
            9,
            2,
            (0..18).map(|i| ((i % 5) as f64) * 0.25 - 0.5).collect(),
        );
        let cols = im2col(&images, shape, 3, 3, 1);
        let via_mm = cols.matmat(&kernels);
        let direct = conv_direct(&images, shape, &kernels, 3, 3, 1);
        assert!(via_mm.max_abs_diff(&direct) < 1e-12);
    }

    #[test]
    fn convolution_runs_on_compressed_batch() {
        let shape = ImageShape {
            height: 12,
            width: 12,
        };
        let images = toy_images(6, shape);
        let kernels =
            DenseMatrix::from_vec(9, 3, (0..27).map(|i| ((i % 4) as f64) - 1.5).collect());
        let cols = im2col(&images, shape, 3, 3, 1);
        let toc = Scheme::Toc.encode(&cols);
        let got = toc.matmat(&kernels);
        let want = conv_direct(&images, shape, &kernels, 3, 3, 1);
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn replication_raises_toc_ratio() {
        // §6: the replicated matrix compresses better than the raw images.
        let shape = ImageShape {
            height: 16,
            width: 16,
        };
        let images = toy_images(8, shape);
        let cols = im2col(&images, shape, 4, 4, 1);
        let ratio =
            |m: &DenseMatrix| m.den_size_bytes() as f64 / Scheme::Toc.encode(m).size_bytes() as f64;
        assert!(
            ratio(&cols) > ratio(&images),
            "im2col ratio {} vs raw {}",
            ratio(&cols),
            ratio(&images)
        );
    }
}
