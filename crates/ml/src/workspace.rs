//! The MGD execution workspace: every scratch buffer a training step
//! needs, owned by the caller and reused across batches and epochs.
//!
//! With one [`ExecWorkspace`] threaded through the trainer, a steady-state
//! epoch performs **zero per-batch heap allocation** in the gradient path:
//! predictions, loss-derivative coefficients, gradients, NN activations,
//! deltas and transposition staging all live here, and the format-level
//! [`toc_formats::ExecScratch`] covers the kernels' internal needs (GC
//! decompression staging, TOC decode-tree rebuilds). Buffers grow to the
//! high-water mark of the shapes seen and are reused thereafter.

use toc_formats::ExecScratch;
use toc_linalg::DenseMatrix;

/// Reusable scratch buffers for one training thread.
///
/// Create once (e.g. per [`crate::mgd::Trainer`] run or per data-parallel
/// worker) and pass to the `*_ws` update methods. All fields are plain
/// buffers: dropping or recreating the workspace only costs allocations,
/// never correctness.
#[derive(Debug, Default)]
pub struct ExecWorkspace {
    /// Format-level scratch (GC decompression staging, TOC tree rebuilds).
    pub exec: ExecScratch,
    /// Model predictions / decision values per batch row (`A·w`).
    pub pred: Vec<f64>,
    /// Per-row loss-derivative coefficients (`∂ℓ/∂f / |B|`).
    pub coef: Vec<f64>,
    /// Weight-space gradient (`g·A`).
    pub grad: Vec<f64>,
    /// Per-class ±1 label staging for one-vs-rest updates.
    pub ovr_y: Vec<f64>,
    /// Class-index staging (labels cast from `f64`).
    pub class_idx: Vec<usize>,
    /// NN target matrix staging (one-hot / ±1-to-probability).
    pub targets: DenseMatrix,
    /// NN backward delta (double-buffered with `delta2`).
    pub delta: DenseMatrix,
    /// Second NN delta buffer.
    pub delta2: DenseMatrix,
    /// Transposition staging (`δᵀ`, `Wᵀ`, `actᵀ`).
    pub trans: DenseMatrix,
    /// Second transposition staging buffer (`δᵀ·A` before re-transposing).
    pub trans2: DenseMatrix,
    /// NN forward activations, one per layer; the last entry holds the
    /// output probabilities.
    pub acts: Vec<DenseMatrix>,
    /// NN per-layer weight-gradient buffers.
    pub grads_w: Vec<DenseMatrix>,
    /// NN per-layer bias-gradient buffers.
    pub grads_b: Vec<Vec<f64>>,
}

impl ExecWorkspace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensure the per-layer buffer vectors hold at least `n_layers`
    /// entries (empty matrices/vectors; the kernels reshape them).
    pub(crate) fn ensure_layers(&mut self, n_layers: usize) {
        while self.acts.len() < n_layers {
            self.acts.push(DenseMatrix::default());
        }
        while self.grads_w.len() < n_layers {
            self.grads_w.push(DenseMatrix::default());
        }
        while self.grads_b.len() < n_layers {
            self.grads_b.push(Vec::new());
        }
    }
}
