#![forbid(unsafe_code)]
//! # toc-ml — MGD training over compressed mini-batches
//!
//! The machine-learning side of the reproduction: loss functions
//! ([`losses`]), the three model families of the paper's evaluation
//! ([`models`]: linear models with logistic/hinge/squared loss, one-vs-rest
//! multiclass, and a feed-forward neural network), the mini-batch SGD
//! engine ([`mgd`]), synchronous data-parallel NN training ([`parallel`]),
//! and the §6 image-to-column extension ([`im2col`]).
//!
//! All training consumes mini-batches through
//! [`toc_formats::MatrixBatch`], so any encoding — DEN, CSR, CVI, DVI,
//! CLA, Snappy*, Gzip*, or TOC — plugs into the same engine, which is how
//! the end-to-end experiments (Tables 6–7, Figures 9–11) are run.

pub mod im2col;
pub mod losses;
pub mod mgd;
pub mod models;
pub mod parallel;
pub mod workspace;

pub use losses::LossKind;
pub use mgd::{BatchProvider, MemoryProvider, MgdConfig, ModelSpec, TrainReport, Trainer};
pub use models::{LinearModel, NeuralNet, OneVsRest};
pub use parallel::{train_nn_parallel, train_nn_parallel_report, ParallelReport};
pub use workspace::ExecWorkspace;

// Re-export for downstream convenience: `models::LossKind` is used in
// `ModelSpec`.
pub mod prelude {
    pub use crate::losses::LossKind;
    pub use crate::mgd::{
        BatchProvider, MemoryProvider, MgdConfig, ModelSpec, TrainedModel, Trainer,
    };
    pub use crate::models::{LinearModel, NeuralNet, OneVsRest};
}
