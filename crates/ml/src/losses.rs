//! Loss functions for the generalized ERM setting (§2.1.1).
//!
//! Binary labels are encoded as `y ∈ {-1, +1}` throughout; `f` denotes the
//! model's decision value `xᵀh`.

/// Loss families used by the paper's three model classes (§5.3): logistic
/// loss for Logistic regression, hinge loss for SVM, squared loss for
/// Linear regression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossKind {
    /// Mean squared loss: `0.5 (f - y)²`.
    Squared,
    /// Logistic loss: `ln(1 + exp(-y f))`.
    Logistic,
    /// Hinge loss: `max(0, 1 - y f)`.
    Hinge,
}

impl LossKind {
    /// Loss value for one example.
    #[inline]
    pub fn loss(self, f: f64, y: f64) -> f64 {
        match self {
            LossKind::Squared => 0.5 * (f - y) * (f - y),
            LossKind::Logistic => {
                // Numerically stable ln(1 + e^{-yf}).
                let m = -y * f;
                if m > 0.0 {
                    m + (1.0 + (-m).exp()).ln()
                } else {
                    (1.0 + m.exp()).ln()
                }
            }
            LossKind::Hinge => (1.0 - y * f).max(0.0),
        }
    }

    /// Derivative of the loss w.r.t. the decision value `f`.
    #[inline]
    pub fn dloss(self, f: f64, y: f64) -> f64 {
        match self {
            LossKind::Squared => f - y,
            LossKind::Logistic => -y * sigmoid(-y * f),
            LossKind::Hinge => {
                if y * f < 1.0 {
                    -y
                } else {
                    0.0
                }
            }
        }
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// In-place softmax over a slice (used by the NN's multi-class output).
pub fn softmax_inplace(row: &mut [f64]) {
    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_dloss(kind: LossKind, f: f64, y: f64) -> f64 {
        let eps = 1e-6;
        (kind.loss(f + eps, y) - kind.loss(f - eps, y)) / (2.0 * eps)
    }

    #[test]
    fn derivatives_match_numeric() {
        for kind in [LossKind::Squared, LossKind::Logistic, LossKind::Hinge] {
            for f in [-3.0f64, -0.5, 0.3, 2.0] {
                for y in [-1.0f64, 1.0] {
                    if kind == LossKind::Hinge && (1.0 - y * f).abs() < 1e-4 {
                        continue; // kink
                    }
                    let num = numeric_dloss(kind, f, y);
                    let ana = kind.dloss(f, y);
                    assert!(
                        (num - ana).abs() < 1e-5,
                        "{kind:?} f={f} y={y}: {num} vs {ana}"
                    );
                }
            }
        }
    }

    #[test]
    fn logistic_loss_is_stable_for_large_margins() {
        let l = LossKind::Logistic.loss(1e4, -1.0);
        assert!(l.is_finite() && l > 9_000.0);
        let l2 = LossKind::Logistic.loss(1e4, 1.0);
        assert!((0.0..1e-6).contains(&l2));
    }

    #[test]
    fn hinge_zero_beyond_margin() {
        assert_eq!(LossKind::Hinge.loss(2.0, 1.0), 0.0);
        assert_eq!(LossKind::Hinge.dloss(2.0, 1.0), 0.0);
        assert_eq!(LossKind::Hinge.dloss(0.5, 1.0), -1.0);
    }

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-800.0) >= 0.0 && sigmoid(800.0) <= 1.0);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut row = [1.0, 2.0, 3.0, 4.0];
        softmax_inplace(&mut row);
        let sum: f64 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(row.windows(2).all(|w| w[0] < w[1]));
        // Stability with huge logits.
        let mut big = [1e300, 1e300, 0.0];
        softmax_inplace(&mut big);
        assert!(big.iter().all(|v| v.is_finite()));
    }
}
