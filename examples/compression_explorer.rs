//! Compare all eight encoding schemes on a 250-row mini-batch from each of
//! the six dataset presets: compressed size, ratio, and `A·v` latency.
//!
//! This is the "test TOC on a mini-batch sample and figure out if TOC is
//! suitable for the dataset" workflow the paper recommends (§5.1).
//!
//! ```text
//! cargo run --release --example compression_explorer
//! ```

use std::time::Instant;
use toc_repro::data::synth::generate_preset;
use toc_repro::formats::MatrixBatch;
use toc_repro::prelude::*;

fn main() {
    for preset in DatasetPreset::ALL {
        let ds = generate_preset(preset, 250, 42);
        let den_bytes = ds.x.den_size_bytes();
        println!(
            "## {} — 250 x {} (density {:.3}, DEN {} KB)",
            preset.name(),
            ds.x.cols(),
            ds.x.density(),
            den_bytes / 1024
        );
        println!(
            "{:>8} {:>10} {:>8} {:>12}",
            "scheme", "bytes", "ratio", "A·v"
        );
        let v: Vec<f64> = (0..ds.x.cols())
            .map(|i| (i % 5) as f64 * 0.5 - 1.0)
            .collect();
        for scheme in Scheme::PAPER_SET {
            let batch = scheme.encode(&ds.x);
            // Warm up, then time a handful of matvecs.
            let _ = batch.matvec(&v);
            let iters = 20;
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(batch.matvec(&v));
            }
            let per_op = t0.elapsed() / iters;
            println!(
                "{:>8} {:>10} {:>7.1}x {:>12.1?}",
                scheme.name(),
                batch.size_bytes(),
                den_bytes as f64 / batch.size_bytes() as f64,
                per_op,
            );
        }
        println!();
    }
}
