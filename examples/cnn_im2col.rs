//! §6 extension: run a convolution on a TOC-compressed batch via
//! image-to-column replication.
//!
//! im2col replicates each sliding window as a matrix row; convolution then
//! becomes `A · K` — a right multiplication that executes directly on the
//! compressed batch. The paper predicts *higher* compression ratios on the
//! replicated matrix (duplicated pixels = repeated subsequences), which
//! this example verifies.
//!
//! ```text
//! cargo run --release --example cnn_im2col
//! ```

use toc_repro::formats::MatrixBatch;
use toc_repro::ml::im2col::{conv_direct, im2col, ImageShape};
use toc_repro::prelude::*;

fn main() {
    // A batch of 16 synthetic 24x24 "images" with blocky 3-level structure.
    let shape = ImageShape {
        height: 24,
        width: 24,
    };
    let n_images = 16;
    let mut images = DenseMatrix::zeros(n_images, shape.height * shape.width);
    for img in 0..n_images {
        for y in 0..shape.height {
            for x in 0..shape.width {
                let v = (((x / 4) + (y / 4) + img) % 3) as f64 * 0.5;
                images.set(img, y * shape.width + x, v);
            }
        }
    }

    // 3 classic 3x3 kernels, stored as a 9 x 3 matrix (kernel cells x
    // kernels) so convolution is `im2col(images) · kernels`.
    let kernels = {
        let sobel_x = [1.0, 0.0, -1.0, 2.0, 0.0, -2.0, 1.0, 0.0, -1.0];
        let sobel_y = [1.0, 2.0, 1.0, 0.0, 0.0, 0.0, -1.0, -2.0, -1.0];
        let blur = [0.25, 0.25, 0.25, 0.25, 0.0, 0.25, 0.25, 0.25, 0.25];
        let mut m = DenseMatrix::zeros(9, 3);
        for i in 0..9 {
            m.set(i, 0, sobel_x[i]);
            m.set(i, 1, sobel_y[i]);
            m.set(i, 2, blur[i]);
        }
        m
    };

    // Replicate windows and compress.
    let cols = im2col(&images, shape, 3, 3, 1);
    let raw_ratio =
        images.den_size_bytes() as f64 / Scheme::Toc.encode(&images).size_bytes() as f64;
    let toc = Scheme::Toc.encode(&cols);
    let col_ratio = cols.den_size_bytes() as f64 / toc.size_bytes() as f64;
    println!("im2col: {} windows x {} cells", cols.rows(), cols.cols());
    println!("TOC ratio on raw images:      {raw_ratio:.1}x");
    println!("TOC ratio on im2col matrix:   {col_ratio:.1}x  (replication helps, as §6 predicts)");
    assert!(col_ratio > raw_ratio);

    // Convolution on the compressed batch = one A·K right multiplication.
    let feature_maps = toc.matmat(&kernels);
    let reference = conv_direct(&images, shape, &kernels, 3, 3, 1);
    let diff = feature_maps.max_abs_diff(&reference);
    println!("conv(compressed) vs direct convolution: max |diff| = {diff:.2e}");
    assert!(diff < 1e-9);
    println!("convolution on TOC batch  ✓");
}
