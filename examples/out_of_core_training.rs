//! The paper's headline scenario (Figure 1D, Table 6): train a logistic
//! regression with MGD when the dataset does not fit in memory.
//!
//! We generate a census-like dataset, cap the in-memory budget at the TOC
//! footprint, and train the identical model through a DEN store (which
//! spills to disk and pays IO every epoch) and a TOC store (which stays
//! resident).
//!
//! ```text
//! cargo run --release --example out_of_core_training
//! ```

use toc_repro::data::store::StoreConfig;
use toc_repro::data::synth::generate_preset;
use toc_repro::ml::mgd::ModelSpec;
use toc_repro::prelude::*;

fn main() {
    let rows = 6000;
    let ds = generate_preset(DatasetPreset::CensusLike, rows, 7);
    println!(
        "dataset: census-like, {} rows x {} cols, density {:.2}",
        rows,
        ds.x.cols(),
        ds.x.density()
    );

    // Memory budget: 2x the TOC footprint — roomy for TOC, far too small
    // for DEN.
    let toc_bytes: usize = ds
        .minibatches(250)
        .iter()
        .map(|(x, _)| Scheme::Toc.encode(x).size_bytes())
        .sum();
    let budget = toc_bytes * 2;
    println!("memory budget: {} KB\n", budget / 1024);

    let eval = Scheme::Den.encode(&ds.x);
    for scheme in [Scheme::Den, Scheme::Csr, Scheme::Toc] {
        let store =
            MiniBatchStore::build(&ds.x, &ds.labels, &StoreConfig::new(scheme, 250, budget))
                .expect("store build");
        let trainer = Trainer::new(MgdConfig {
            epochs: 5,
            lr: 0.05,
            ..Default::default()
        });
        let mut report = trainer.train(&ModelSpec::Linear(LossKind::Logistic), &store, None);
        let err = report.model.error_rate(&eval, &ds.labels);
        println!(
            "{:>4}: train {:>8.1?}  error {:>5.1}%  resident {}/{} batches  ({} KB encoded)",
            scheme.name(),
            report.train_time,
            err * 100.0,
            store.in_memory_batches(),
            store.in_memory_batches() + store.spilled_batches(),
            store.total_bytes() / 1024,
        );
    }
}
