//! Quickstart: compress a mini-batch with TOC and run matrix operations
//! directly on the compressed bytes.
//!
//! Walks the paper's Figure 3 running example end to end:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use toc_repro::prelude::*;

fn main() {
    // The 4x4 matrix of Figure 3.
    let batch = DenseMatrix::from_rows(vec![
        vec![1.1, 2.0, 3.0, 1.4],
        vec![1.1, 2.0, 3.0, 0.0],
        vec![0.0, 1.1, 3.0, 1.4],
        vec![1.1, 2.0, 0.0, 0.0],
    ]);

    // --- Compress -----------------------------------------------------
    let toc = TocBatch::encode(&batch);
    let stats = toc.stats();
    println!(
        "encoded {}x{} matrix into {} bytes",
        batch.rows(),
        batch.cols(),
        toc.size_bytes()
    );
    println!(
        "  first layer |I| = {}, unique values = {}, codes |D| = {}, tree nodes = {}",
        stats.first_layer_len, stats.unique_values, stats.codes_len, stats.n_nodes
    );

    // --- Lossless roundtrip --------------------------------------------
    assert_eq!(toc.decode(), batch);
    println!("decode(encode(A)) == A  ✓");

    // --- Decompression-free matrix operations ---------------------------
    // Right multiplication, A·v (Algorithm 4).
    let v = [1.0, 1.0, 1.0, 1.0];
    let av = toc.matvec(&v).unwrap();
    assert_eq!(av, batch.matvec(&v));
    println!("A·1 = {av:?}");

    // Left multiplication, v·A (Algorithm 5).
    let w = [1.0, 0.0, 0.0, 1.0];
    let va = toc.vecmat(&w).unwrap();
    assert_eq!(va, batch.vecmat(&w));
    println!("[1,0,0,1]·A = {va:?}");

    // Sparse-safe scaling, A.*c (Algorithm 3): rewrites only the 4 unique
    // values, no matter how large the matrix is.
    let mut scaled = toc.clone();
    scaled.scale(10.0);
    println!("(A .* 10)[0,0] = {}", scaled.decode().get(0, 0));

    // --- The same API works through the format-agnostic layer -----------
    let any = Scheme::Toc.encode(&batch);
    println!(
        "through MatrixBatch: {} bytes vs DEN {} bytes (ratio {:.1}x)",
        any.size_bytes(),
        batch.den_size_bytes(),
        batch.den_size_bytes() as f64 / any.size_bytes() as f64
    );

    // Serialization: a TocBatch *is* its physical bytes.
    let bytes = toc.to_bytes();
    let restored = TocBatch::from_bytes(bytes).unwrap();
    assert_eq!(restored, toc);
    println!("serialize/deserialize  ✓");
}
