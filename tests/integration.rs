//! Cross-crate integration tests: the full pipeline from synthetic data
//! through compression, the out-of-core store, and MGD training.

use toc_repro::data::store::StoreConfig;
use toc_repro::data::synth::{generate_preset, DatasetPreset};
use toc_repro::formats::MatrixBatch;
use toc_repro::ml::mgd::{BatchProvider, ModelSpec, TrainedModel};
use toc_repro::prelude::*;

/// Training with any encoding must produce the same model as training with
/// DEN: compression is lossless and the kernels are exact (up to fp
/// reassociation).
#[test]
fn training_parity_across_all_schemes_through_the_store() {
    let ds = generate_preset(DatasetPreset::CensusLike, 800, 3);
    let reference = train_weights(&ds, Scheme::Den, usize::MAX);
    for scheme in [
        Scheme::Csr,
        Scheme::Cvi,
        Scheme::Dvi,
        Scheme::Cla,
        Scheme::Snappy,
        Scheme::Gzip,
        Scheme::Toc,
        Scheme::TocVarint,
    ] {
        let got = train_weights(&ds, scheme, usize::MAX);
        let max_diff = reference
            .iter()
            .zip(&got)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_diff < 1e-8,
            "{}: max weight diff {max_diff}",
            scheme.name()
        );
    }
}

/// Spilling to disk must not change the trained model at all: the bytes
/// read back are identical to the bytes written.
#[test]
fn spilled_training_is_bit_identical_to_resident_training() {
    let ds = generate_preset(DatasetPreset::Kdd99Like, 1000, 9);
    let resident = train_weights(&ds, Scheme::Toc, usize::MAX);
    let spilled = train_weights(&ds, Scheme::Toc, 0);
    assert_eq!(resident, spilled);
}

fn train_weights(ds: &toc_repro::data::synth::Dataset, scheme: Scheme, budget: usize) -> Vec<f64> {
    let store = MiniBatchStore::build(&ds.x, &ds.labels, &StoreConfig::new(scheme, 100, budget))
        .expect("store");
    let trainer = Trainer::new(MgdConfig {
        epochs: 3,
        lr: 0.1,
        ..Default::default()
    });
    let report = trainer.train(&ModelSpec::Linear(LossKind::Logistic), &store, None);
    match report.model {
        TrainedModel::Linear(m) => m.w,
        _ => unreachable!(),
    }
}

/// Every preset's batches survive store spill bit-exactly for every scheme.
#[test]
fn store_roundtrip_is_bit_exact_for_all_presets() {
    for preset in DatasetPreset::ALL {
        // Keep the sparse/dense extremes small: their batches are big.
        let rows = 300;
        let ds = generate_preset(preset, rows, 17);
        for scheme in [Scheme::Toc, Scheme::Gzip, Scheme::Cla] {
            let store = MiniBatchStore::build(&ds.x, &ds.labels, &StoreConfig::new(scheme, 100, 0))
                .expect("store");
            for i in 0..store.num_batches() {
                store.visit(i, &mut |b, _| {
                    let want = ds.x.slice_rows(i * 100, ((i + 1) * 100).min(rows));
                    assert_eq!(b.decode(), want, "{} {}", preset.name(), scheme.name());
                });
            }
        }
    }
}

/// The NN trains through compressed batches and reaches a sane error on a
/// learnable multiclass task.
#[test]
fn nn_multiclass_end_to_end() {
    let ds = generate_preset(DatasetPreset::MnistLike, 600, 5);
    let store = MiniBatchStore::build(
        &ds.x,
        &ds.labels,
        &StoreConfig::new(Scheme::Toc, 100, usize::MAX),
    )
    .expect("store");
    let trainer = Trainer::new(MgdConfig {
        epochs: 12,
        lr: 0.3,
        ..Default::default()
    });
    let spec = ModelSpec::NeuralNet {
        hidden: vec![32],
        outputs: ds.classes,
    };
    let mut report = trainer.train(&spec, &store, None);
    let eval = Scheme::Den.encode(&ds.x);
    let err = report.model.error_rate(&eval, &ds.labels);
    // 10 classes, random = 0.9 error; require clear learning.
    assert!(err < 0.45, "error {err}");
}

/// MGD epoch-wise error must improve over a recorded curve (Figure 11
/// machinery).
#[test]
fn error_curve_improves() {
    let ds = generate_preset(DatasetPreset::ImagenetLike, 500, 21);
    let store = MiniBatchStore::build(
        &ds.x,
        &ds.labels,
        &StoreConfig::new(Scheme::Toc, 125, usize::MAX),
    )
    .expect("store");
    let trainer = Trainer::new(MgdConfig {
        epochs: 10,
        lr: 0.05,
        record_curve: true,
        ..Default::default()
    });
    let eval = Scheme::Den.encode(&ds.x);
    let report = trainer.train(
        &ModelSpec::Linear(LossKind::Hinge),
        &store,
        Some((&eval, &ds.labels)),
    );
    assert_eq!(report.curve.len(), 10);
    let first = report.curve[0].error_rate;
    let last = report.curve[9].error_rate;
    assert!(last <= first, "curve went {first} -> {last}");
    assert!(report
        .curve
        .windows(2)
        .all(|w| w[1].elapsed >= w[0].elapsed));
}

/// Umbrella prelude exposes the advertised API surface.
#[test]
fn prelude_api_surface() {
    let m = DenseMatrix::from_rows(vec![vec![1.0, 0.0], vec![1.0, 0.0]]);
    let toc = TocBatch::encode(&m);
    assert_eq!(toc.decode(), m);
    let any: AnyBatch = Scheme::Toc.encode(&m);
    assert_eq!(any.rows(), 2);
    let _cfg = MgdConfig::default();
    let _lin = LinearModel::new(2, LossKind::Squared);
    let _nn = NeuralNet::new(2, &[4], 1, 0);
}

/// Corrupt spill data must surface as an error, not a panic, when loaded
/// through the deserialization layer.
#[test]
fn corrupt_serialized_batches_error() {
    let ds = generate_preset(DatasetPreset::CensusLike, 100, 2);
    for scheme in [Scheme::Toc, Scheme::Gzip, Scheme::Cla, Scheme::Cvi] {
        let bytes = scheme.encode(&ds.x).to_bytes();
        // Truncations.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let _ = toc_repro::formats::Scheme::from_bytes(&bytes[..cut]);
        }
        // Bit flips in the header region.
        for i in 1..bytes.len().min(24) {
            let mut b = bytes.clone();
            b[i] ^= 0xFF;
            if let Ok(batch) = toc_repro::formats::Scheme::from_bytes(&b) {
                let _ = batch.size_bytes();
            }
        }
    }
}

/// The compression-ratio landscape that drives every result in the paper
/// (asserted here so regressions in any layer show up as a test failure).
#[test]
fn figure5_landscape_holds() {
    let ratios = |preset: DatasetPreset| {
        let ds = generate_preset(preset, 250, 42);
        let den = ds.x.den_size_bytes() as f64;
        move |s: Scheme| den / s.encode(&ds.x).size_bytes() as f64
    };
    // TOC wins against all LMC baselines on the moderate presets.
    for preset in DatasetPreset::MODERATE {
        let r = ratios(preset);
        for lmc in [Scheme::Csr, Scheme::Cvi, Scheme::Dvi, Scheme::Cla] {
            assert!(
                r(Scheme::Toc) > r(lmc),
                "{}: TOC {:.1} vs {} {:.1}",
                preset.name(),
                r(Scheme::Toc),
                lmc.name(),
                r(lmc)
            );
        }
    }
    // Gzip-class beats TOC on mnist-like (the paper's stated exception).
    let r = ratios(DatasetPreset::MnistLike);
    assert!(r(Scheme::Gzip) > r(Scheme::Toc));
    // CSR is the right choice on rcv1-like; TOC is within 40%.
    let r = ratios(DatasetPreset::Rcv1Like);
    assert!(r(Scheme::Csr) >= r(Scheme::Toc) * 0.95);
    // Nothing compresses deep-like meaningfully.
    let r = ratios(DatasetPreset::DeepLike);
    for s in Scheme::PAPER_SET {
        assert!(r(s) < 1.5, "{}", s.name());
    }
}
